#include "core/naive_search.h"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "core/ranker.h"

#include "graph/traversal.h"

namespace cirank {

namespace {

// Sorted answer accumulator with canonical-key deduplication.
class AnswerCollector {
 public:
  explicit AnswerCollector(size_t k) : k_(k) {}

  void Offer(const Jtt& tree, double score) {
    if (!seen_.insert(tree.CanonicalKey()).second) return;
    answers_.push_back(RankedAnswer{tree, score});
    std::sort(answers_.begin(), answers_.end(),
              [](const RankedAnswer& a, const RankedAnswer& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.tree.CanonicalKey() < b.tree.CanonicalKey();
              });
    if (answers_.size() > k_) answers_.resize(k_);
  }

  size_t distinct() const { return seen_.size(); }
  std::vector<RankedAnswer> Take() { return std::move(answers_); }

 private:
  size_t k_;
  std::vector<RankedAnswer> answers_;
  std::set<std::string> seen_;
};

// Per-source BFS record: distance and every BFS-level predecessor, so all
// shortest paths can be reconstructed.
struct Reach {
  uint32_t dist = kUnreachable;
  std::vector<NodeId> predecessors;
};

// All shortest paths (as node sequences from source to target), capped.
void EnumeratePaths(const std::map<NodeId, Reach>& reach, NodeId source,
                    NodeId target, int64_t cap,
                    std::vector<std::vector<NodeId>>* out) {
  // Depth-first over predecessor lists.
  struct Frame {
    NodeId node;
    size_t next_pred;
  };
  std::vector<Frame> stack{{target, 0}};
  std::vector<NodeId> chain{target};
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.node == source) {
      out->emplace_back(chain.rbegin(), chain.rend());
      if (static_cast<int64_t>(out->size()) >= cap) return;
      stack.pop_back();
      chain.pop_back();
      continue;
    }
    const Reach& r = reach.at(top.node);
    if (top.next_pred >= r.predecessors.size()) {
      stack.pop_back();
      chain.pop_back();
      continue;
    }
    NodeId pred = r.predecessors[top.next_pred++];
    stack.push_back({pred, 0});
    chain.push_back(pred);
  }
}

}  // namespace

Result<std::vector<Jtt>> EnumerateAnswers(const Graph& graph,
                                          const InvertedIndex& index,
                                          const Query& query,
                                          const EnumerateOptions& options) {
  if (query.empty()) return Status::InvalidArgument("empty query");
  if (query.size() > Query::kMaxKeywords) {
    return Status::InvalidArgument("at most 31 keywords are supported");
  }

  const uint32_t radius = (options.max_diameter + 1) / 2;

  // Step 1: BFS from every non-free node to radius ceil(D/2), recording all
  // shortest-path predecessors (Sec. IV-A).
  std::map<NodeId, KeywordMask> source_mask;
  for (size_t i = 0; i < query.keywords.size(); ++i) {
    for (NodeId v : index.MatchingNodes(query.keywords[i])) {
      source_mask[v] |= KeywordMask{1} << i;
    }
  }

  std::map<NodeId, std::map<NodeId, Reach>> reach;
  for (const auto& [s, mask] : source_mask) {
    (void)mask;
    std::map<NodeId, Reach>& r = reach[s];
    r[s].dist = 0;
    std::deque<NodeId> frontier{s};
    while (!frontier.empty()) {
      NodeId u = frontier.front();
      frontier.pop_front();
      const uint32_t du = r[u].dist;
      if (du >= radius) continue;
      for (const Edge& e : graph.out_edges(u)) {
        auto it = r.find(e.to);
        if (it == r.end()) {
          Reach& nr = r[e.to];
          nr.dist = du + 1;
          nr.predecessors.push_back(u);
          frontier.push_back(e.to);
        } else if (it->second.dist == du + 1) {
          it->second.predecessors.push_back(u);  // another shortest path
        }
      }
    }
  }

  // Step 2: collect, per potential root, the sources that reach it.
  std::map<NodeId, std::vector<NodeId>> sources_at_root;
  for (const auto& [s, r] : reach) {
    for (const auto& [v, info] : r) {
      (void)info;
      sources_at_root[v].push_back(s);
    }
  }

  const KeywordMask all =
      query.empty() ? 0 : (KeywordMask{1} << query.size()) - 1;
  std::set<std::string> seen;
  std::vector<Jtt> answers;
  auto budget_left = [&] {
    return options.max_answers == 0 ||
           static_cast<int64_t>(answers.size()) < options.max_answers;
  };

  for (const auto& [root, srcs] : sources_at_root) {
    if (!budget_left()) break;
    KeywordMask covered = 0;
    for (NodeId s : srcs) covered |= source_mask.at(s);
    if ((covered & all) != all) continue;

    // Group reachable sources by keyword.
    std::vector<std::vector<NodeId>> per_keyword(query.size());
    for (NodeId s : srcs) {
      const KeywordMask m = source_mask.at(s);
      for (size_t i = 0; i < query.size(); ++i) {
        if (m & (KeywordMask{1} << i)) per_keyword[i].push_back(s);
      }
    }

    // Enumerate keyword -> source combinations (odometer), capped.
    std::vector<size_t> pick(query.size(), 0);
    int64_t combos = 0;
    for (;;) {
      if (!budget_left()) break;
      if (++combos > options.max_combinations_per_root) break;
      std::set<NodeId> chosen;
      for (size_t i = 0; i < query.size(); ++i) {
        chosen.insert(per_keyword[i][pick[i]]);
      }

      // Enumerate shortest paths per chosen source and union them.
      std::vector<std::vector<std::vector<NodeId>>> path_options;
      for (NodeId s : chosen) {
        path_options.emplace_back();
        EnumeratePaths(reach.at(s), s, root, options.max_paths_per_source,
                       &path_options.back());
      }
      std::vector<size_t> ppick(path_options.size(), 0);
      for (;;) {
        if (!budget_left()) break;
        std::set<std::pair<NodeId, NodeId>> undirected;
        std::set<NodeId> nodes{root};
        for (size_t i = 0; i < path_options.size(); ++i) {
          const std::vector<NodeId>& path = path_options[i][ppick[i]];
          for (size_t j = 0; j + 1 < path.size(); ++j) {
            undirected.insert({std::min(path[j], path[j + 1]),
                               std::max(path[j], path[j + 1])});
          }
          for (NodeId v : path) nodes.insert(v);
        }
        if (undirected.size() + 1 == nodes.size()) {
          // The union is a tree; orient it from the root.
          std::vector<std::pair<NodeId, NodeId>> edges;
          std::set<NodeId> placed{root};
          std::deque<NodeId> tree_frontier{root};
          while (!tree_frontier.empty()) {
            NodeId u = tree_frontier.front();
            tree_frontier.pop_front();
            for (const auto& [a, b] : undirected) {
              NodeId other = kInvalidNode;
              if (a == u && !placed.count(b)) other = b;
              if (b == u && !placed.count(a)) other = a;
              if (other == kInvalidNode) continue;
              edges.emplace_back(u, other);
              placed.insert(other);
              tree_frontier.push_back(other);
            }
          }
          Result<Jtt> tree = Jtt::Create(root, std::move(edges));
          if (tree.ok() && tree->Diameter() <= options.max_diameter &&
              tree->IsReduced(query, index) &&
              tree->CoversAllKeywords(query, index) &&
              seen.insert(tree->CanonicalKey()).second) {
            answers.push_back(std::move(tree).value());
          }
        }
        // Advance the path odometer.
        size_t d = 0;
        while (d < ppick.size()) {
          if (++ppick[d] < path_options[d].size()) break;
          ppick[d] = 0;
          ++d;
        }
        if (d == ppick.size()) break;
      }

      // Advance the source odometer.
      size_t d = 0;
      while (d < pick.size()) {
        if (++pick[d] < per_keyword[d].size()) break;
        pick[d] = 0;
        ++d;
      }
      if (d == pick.size()) break;
    }
  }

  return answers;
}

namespace {

// The "naive" executor: the paper's Sec. IV-A algorithm decomposed into the
// pipeline stages. Prepare enumerates the full answer pool (BFS + path
// combination) and builds the ranker; Expand scores the pool under the
// selected ranker, checking the deadline/budget guard between trees; Emit
// ranks the collected answers.
class NaiveExecutor final : public SearchExecutor {
 public:
  NaiveExecutor(const TreeScorer& scorer, const Query& query,
                const NaiveSearchOptions& options,
                const SearchOptions& search_options)
      : scorer_(scorer),
        query_(query),
        options_(options),
        search_options_(search_options),
        answers_(static_cast<size_t>(options.k)) {}

  std::string_view name() const override { return "naive"; }

  Status Prepare(ExecutionContext& ctx) override {
    // Pool scoring never consults UpperBound, so the ranker is built without
    // per-query bound state (null query in the env).
    CIRANK_ASSIGN_OR_RETURN(
        ranker_,
        RankerRegistry::Global().Create(
            search_options_.ranker, RankerEnv{&scorer_, nullptr,
                                              search_options_}));
    EnumerateOptions enum_options;
    enum_options.max_diameter = options_.max_diameter;
    enum_options.max_combinations_per_root = options_.max_combinations_per_root;
    enum_options.max_paths_per_source = options_.max_paths_per_source;
    CIRANK_ASSIGN_OR_RETURN(
        pool_, EnumerateAnswers(scorer_.model().graph(), scorer_.index(),
                                query_, enum_options));
    ctx.stages().candidates_generated = static_cast<int64_t>(pool_.size());
    (void)ctx.ChargeCandidates(static_cast<int64_t>(pool_.size()));
    return Status::OK();
  }

  Status Expand(ExecutionContext& ctx) override {
    for (const Jtt& tree : pool_) {
      if (ctx.ShouldStop()) return ctx.stop_status();
      answers_.Offer(tree, ranker_->ScoreAnswer(tree, query_));
      ++scored_;
    }
    return Status::OK();
  }

  Result<std::vector<RankedAnswer>> Emit(ExecutionContext& ctx) override {
    (void)ctx;
    return answers_.Take();
  }

  void FillStats(SearchStats* stats) const override {
    stats->ranker = std::string(ranker_->name());
    stats->generated = scored_;
    stats->answers_found = static_cast<int64_t>(answers_.distinct());
  }

 private:
  const TreeScorer& scorer_;
  const Query& query_;
  const NaiveSearchOptions options_;
  const SearchOptions search_options_;
  std::unique_ptr<Ranker> ranker_;
  std::vector<Jtt> pool_;
  AnswerCollector answers_;
  int64_t scored_ = 0;
};

}  // namespace

Result<std::unique_ptr<SearchExecutor>> MakeNaiveExecutor(
    const ExecutorEnv& env) {
  if (env.scorer == nullptr || env.query == nullptr) {
    return Status::InvalidArgument("executor env missing scorer or query");
  }
  if (env.query->empty()) return Status::InvalidArgument("empty query");
  if (env.query->size() > Query::kMaxKeywords) {
    return Status::InvalidArgument("at most 31 keywords are supported");
  }
  if (env.options.k <= 0) return Status::InvalidArgument("k must be positive");
  NaiveSearchOptions options;
  options.k = env.options.k;
  options.max_diameter = env.options.max_diameter;
  std::unique_ptr<SearchExecutor> executor = std::make_unique<NaiveExecutor>(
      *env.scorer, *env.query, options, env.options);
  return executor;
}

Result<std::vector<RankedAnswer>> NaiveSearch(const TreeScorer& scorer,
                                              const Query& query,
                                              const NaiveSearchOptions& options,
                                              SearchStats* stats) {
  if (query.empty()) return Status::InvalidArgument("empty query");
  if (query.size() > Query::kMaxKeywords) {
    return Status::InvalidArgument("at most 31 keywords are supported");
  }
  if (options.k <= 0) return Status::InvalidArgument("k must be positive");
  SearchOptions search_options;
  search_options.k = options.k;
  search_options.max_diameter = options.max_diameter;
  NaiveExecutor executor(scorer, query, options, search_options);
  ExecutionContext ctx(ExecutionLimits{});
  return RunSearchPipeline(executor, ctx, stats);
}

Result<std::vector<RankedAnswer>> ExhaustiveSearch(
    const TreeScorer& scorer, const Query& query,
    const ExhaustiveSearchOptions& options) {
  if (query.empty()) return Status::InvalidArgument("empty query");
  if (query.size() > Query::kMaxKeywords) {
    return Status::InvalidArgument("at most 31 keywords are supported");
  }
  if (options.k <= 0) return Status::InvalidArgument("k must be positive");

  const Graph& graph = scorer.model().graph();
  const InvertedIndex& index = scorer.index();
  AnswerCollector answers(static_cast<size_t>(options.k));

  // BFS over tree space: every connected subtree up to max_nodes, dedup by
  // canonical key.
  std::set<std::string> seen;
  std::deque<Jtt> frontier;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    Jtt t(v);
    if (seen.insert(t.CanonicalKey()).second) frontier.push_back(t);
  }

  while (!frontier.empty()) {
    Jtt t = std::move(frontier.front());
    frontier.pop_front();

    if (t.Diameter() <= options.max_diameter &&
        t.IsReduced(query, index) && t.CoversAllKeywords(query, index)) {
      TreeScore ts = scorer.Score(t, query);
      answers.Offer(t, ts.score);
    }

    if (t.size() >= options.max_nodes) continue;
    for (NodeId v : t.nodes()) {
      for (const Edge& e : graph.out_edges(v)) {
        if (t.contains(e.to)) continue;
        std::vector<std::pair<NodeId, NodeId>> edges = t.edges();
        edges.emplace_back(v, e.to);
        Result<Jtt> grown = Jtt::Create(t.root(), std::move(edges));
        if (!grown.ok()) continue;
        if (grown->Diameter() > options.max_diameter) continue;
        if (seen.insert(grown->CanonicalKey()).second) {
          frontier.push_back(std::move(grown).value());
        }
      }
    }
  }

  return answers.Take();
}

}  // namespace cirank
