#include "core/bounds.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace cirank {

namespace {

// Flows come back in tree-node order, so positional lookup suffices.
double FlowAt(const std::vector<Flow>& flows, const Jtt& tree, NodeId v) {
  const size_t i = tree.IndexOf(v);
  return i == flows.size() ? 0.0 : flows[i].count;
}

}  // namespace

UpperBoundCalculator::UpperBoundCalculator(const TreeScorer& scorer,
                                           const Query& query,
                                           uint32_t max_diameter,
                                           const PairwiseBoundProvider* bounds)
    : scorer_(&scorer),
      query_(&query),
      max_diameter_(max_diameter),
      bounds_(bounds) {
  CIRANK_DCHECK(query.size() <= 31);
  all_mask_ = query.empty()
                  ? 0
                  : (KeywordMask{1} << query.size()) - 1;

  const RwmpModel& model = scorer.model();
  const InvertedIndex& index = scorer.index();
  keyword_sources_.resize(query.size());
  for (size_t i = 0; i < query.keywords.size(); ++i) {
    for (NodeId v : index.MatchingNodes(query.keywords[i])) {
      const double e = model.Emission(v, query, index);
      if (e > 0.0) keyword_sources_[i].push_back(SourceInfo{v, e});
    }
  }
}

double UpperBoundCalculator::NeighborDampening(NodeId r) const {
  auto it = neighbor_damp_cache_.find(r);
  if (it != neighbor_damp_cache_.end()) return it->second;
  const RwmpModel& model = scorer_->model();
  double best = 0.0;
  for (const Edge& e : model.graph().out_edges(r)) {
    best = std::max(best, model.dampening(e.to));
  }
  neighbor_damp_cache_[r] = best;
  return best;
}

double UpperBoundCalculator::AttachBound(size_t keyword_idx, NodeId r,
                                         uint32_t /*root_ecc*/) const {
  const auto key = std::make_pair(keyword_idx, r);
  auto it = attach_cache_.find(key);
  if (it != attach_cache_.end()) return it->second;

  const Graph& graph = scorer_->model().graph();
  const double nb_damp = NeighborDampening(r);
  double best = 0.0;
  for (const SourceInfo& src : keyword_sources_[keyword_idx]) {
    if (src.node == r) {
      // The root itself matches the keyword; no transmission needed (its
      // messages are "received" at emission strength).
      best = std::max(best, src.emission);
      continue;
    }
    // A non-adjacent source must route through at least one interior node,
    // whose dampening is at most the best neighbor of r (paper's refined
    // complete estimate); an index bound tightens this further.
    double transmission =
        graph.has_edge(src.node, r) ? 1.0 : nb_damp;
    if (bounds_ != nullptr) {
      const uint32_t ds = bounds_->DistanceLowerBound(src.node, r);
      if (ds == kUnreachable || ds > max_diameter_) continue;
      transmission = std::min(transmission,
                              bounds_->TransmissionBound(src.node, r));
    }
    best = std::max(best, src.emission * transmission);
  }
  attach_cache_[key] = best;
  return best;
}

double UpperBoundCalculator::OutsideBound(NodeId r,
                                          uint32_t /*root_ecc*/) const {
  auto it = outside_cache_.find(r);
  if (it != outside_cache_.end()) return it->second;

  const RwmpModel& model = scorer_->model();
  const Graph& graph = model.graph();
  const double nb_damp = NeighborDampening(r);
  double best = 0.0;
  for (const auto& sources : keyword_sources_) {
    for (const SourceInfo& src : sources) {
      if (src.node == r) continue;
      double transmission = graph.has_edge(r, src.node) ? 1.0 : nb_damp;
      if (bounds_ != nullptr) {
        const uint32_t ds = bounds_->DistanceLowerBound(r, src.node);
        if (ds == kUnreachable || ds > max_diameter_) continue;
        transmission = std::min(transmission,
                                bounds_->TransmissionBound(r, src.node));
      }
      best = std::max(best, transmission * model.dampening(src.node));
    }
  }
  outside_cache_[r] = best;
  return best;
}

double UpperBoundCalculator::UpperBound(const Candidate& c) const {
  ++calls_;
  const RwmpModel& model = scorer_->model();
  const InvertedIndex& index = scorer_->index();
  const NodeId r = c.root();
  const uint32_t ecc = c.tree.EccentricityOf(r);

  // In-tree sources and their flows.
  std::vector<SourceInfo> in_tree;
  for (NodeId v : c.tree.nodes()) {
    const double e = model.Emission(v, *query_, index);
    if (e > 0.0) in_tree.push_back(SourceInfo{v, e});
  }
  if (in_tree.empty()) return 0.0;

  std::vector<std::vector<Flow>> flows(in_tree.size());
  for (size_t i = 0; i < in_tree.size(); ++i) {
    flows[i] =
        scorer_->Propagate(c.tree, in_tree[i].node, in_tree[i].emission);
  }

  // Transmission from a unit arrival at the root to every tree node
  // (includes the root's own dampening).
  std::vector<Flow> tau_raw = scorer_->Propagate(c.tree, r, 1.0);
  const double d_root = model.dampening(r);
  auto tau = [&](NodeId d) { return d_root * FlowAt(tau_raw, c.tree, d); };

  // Factor with which each in-tree source's messages leave the root.
  auto leave_root = [&](size_t i) {
    return in_tree[i].node == r ? in_tree[i].emission
                                : FlowAt(flows[i], c.tree, r);
  };

  const bool complete = c.IsComplete(all_mask_);

  // Bounds on the attachment strength of each missing keyword.
  std::vector<size_t> missing;
  std::vector<double> attach;
  for (size_t k = 0; k < query_->size(); ++k) {
    if (c.covered & (KeywordMask{1} << k)) continue;
    const double a = AttachBound(k, r, ecc);
    if (a <= 0.0) return 0.0;  // this keyword can never be supplied
    missing.push_back(k);
    attach.push_back(a);
  }

  double best_node_bound = 0.0;
  for (size_t j = 0; j < in_tree.size(); ++j) {
    double bound = std::numeric_limits<double>::infinity();
    // Flows from the other in-tree sources can only shrink as the tree
    // grows, and a min over more message types can only drop.
    for (size_t i = 0; i < in_tree.size(); ++i) {
      if (i == j) continue;
      bound = std::min(bound, FlowAt(flows[i], c.tree, in_tree[j].node));
    }
    const double tau_j = tau(in_tree[j].node);
    for (double a : attach) {
      bound = std::min(bound, a * tau_j);
    }
    if (complete && in_tree.size() == 1) {
      // The candidate alone scores its emission; extensions add sources
      // whose flows are bounded by the best attachment over any keyword.
      double any_attach = 0.0;
      for (size_t k = 0; k < query_->size(); ++k) {
        any_attach = std::max(any_attach, AttachBound(k, r, ecc));
      }
      bound = std::max(in_tree[j].emission, any_attach * tau_j);
    }
    best_node_bound = std::max(best_node_bound, bound);
  }

  // Potential estimate: the best score an appended outside non-free node
  // could attain. It receives every in-tree source's messages, so its min
  // flow is bounded by the weakest source's strength at the root.
  double weakest_leave = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < in_tree.size(); ++i) {
    weakest_leave = std::min(weakest_leave, leave_root(i));
  }
  const double pe = weakest_leave * OutsideBound(r, ecc);

  return std::max(best_node_bound, pe);
}

}  // namespace cirank
