// The one home of the public search-configuration surface (DESIGN.md §11):
//
//   SearchOptions      — the fully resolved per-query configuration every
//                        executor consumes.
//   SearchOverrides    — sparse per-call overrides merged over an engine's
//                        default SearchOptions by MergeOverrides(); only
//                        fields the caller explicitly set replace defaults.
//   QueryCacheOptions  — sizing of the engine's query-result LRU cache.
//   BatchSearchOptions — SearchBatch knobs; embeds a SearchOverrides so the
//                        batch path shares the single merge function
//                        instead of duplicating merge logic.
//
// SearchOverrides supports both plain field-initializer style
// (`SearchOverrides o; o.k = 5;`) and a fluent builder
// (`SearchOverrides().WithK(5).WithExecutor("parallel")`); the two are
// interchangeable and the builder is pure sugar over the optional fields.
#ifndef CIRANK_CORE_OPTIONS_H_
#define CIRANK_CORE_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace cirank {

class PairwiseBoundProvider;  // core/bounds.h
class ShardHooks;             // core/shard_hooks.h

struct SearchOptions {
  // Number of answers to return.
  int k = 10;
  // Answer-tree diameter limit D (Sec. IV, "we put a limit D on the diameter
  // of answer trees").
  uint32_t max_diameter = 4;
  // Safety valve: maximum number of candidates dequeued before the search
  // gives up optimality and returns the best answers found. 0 = unlimited.
  int64_t max_expansions = 0;
  // Optional pairwise bound provider from the index module; null disables
  // index-assisted bounds.
  const PairwiseBoundProvider* bounds = nullptr;
  // Use the paper's literal merge rule ("the result covers more keywords
  // than either input"). Off by default: the strict rule can make some
  // valid answers unreachable; the default relies on candidate-viability
  // pruning instead (see candidate.h), which preserves Theorem 1.
  bool strict_merge_rule = false;

  // --- Execution-pipeline knobs (DESIGN.md §10) ---------------------------
  // Executor the engine routes the query through; must name an entry of
  // ExecutorRegistry ("bnb", "parallel", "naive", or a registered baseline).
  // Direct calls to BranchAndBoundSearch etc. ignore this field.
  std::string executor = "bnb";
  // Worker threads for executors that parallelize within one query (the
  // "parallel" executor); serial executors ignore it.
  int num_threads = 1;
  // Wall-clock deadline for the whole query; 0 = none. On expiry the
  // executor stops expanding and emits the best-so-far partial top-k with
  // SearchStats::truncated set and stop_status() == DeadlineExceeded.
  double deadline_ms = 0.0;
  // Cap on candidates *generated* (admitted) across the query; 0 =
  // unlimited. Like the deadline, exhaustion truncates instead of failing.
  int64_t candidate_budget = 0;

  // --- Ranking knobs (DESIGN.md §15) --------------------------------------
  // Ranker the executors score answers with; must name an entry of
  // RankerRegistry ("rwmp", "rwmp_x_text", "spark", ...). The branch-and-
  // bound executors also prune on the ranker's UpperBound, so the default
  // "rwmp" keeps the pre-refactor Theorem-1 search byte-identical.
  std::string ranker = "rwmp";
  // Optional presentation reordering of the selected top-k: a comma-
  // separated "key [asc|desc]" list over root attributes (core/order_by.h),
  // e.g. "score desc, external_key asc". Empty = pipeline order (score
  // descending, canonical-key ascending). Applied by ExecuteSearch; direct
  // calls to BranchAndBoundSearch etc. ignore it.
  std::string order_by;
  // Mixing weights of the "rwmp_x_text" composite ranker:
  //   score = composite_rwmp_weight * rwmp + composite_text_weight * bm25.
  // Other rankers ignore them. Weights (1.0, 0.0) are bit-exactly the pure
  // "rwmp" ranker.
  double composite_rwmp_weight = 1.0;
  double composite_text_weight = 0.5;

  // --- Sharded serving (DESIGN.md §16) ------------------------------------
  // Scatter-gather hooks installed by shard::ShardedEngine for the per-shard
  // sub-searches: scope membership, answer publication, and the shared
  // global pruning threshold. Null (the default, and the only value external
  // callers should ever set) means unsharded — executors must behave
  // byte-identically to the pre-shard code path. Carried here rather than on
  // ExecutorEnv so it reaches executors through the one options-resolution
  // path, like `bounds` above. Not exposed on SearchOverrides: the hooks are
  // per-sub-search plumbing, not a caller-facing knob.
  const ShardHooks* shard_hooks = nullptr;
};

// Per-call overrides that are merged over the engine's default
// SearchOptions: only fields the caller explicitly sets replace the
// defaults. This is the explicit answer to the footgun where passing a
// default-constructed SearchOptions silently replaced every engine default
// (k back to 10, diameter back to 4, index bounds dropped).
struct SearchOverrides {
  std::optional<int> k;
  std::optional<uint32_t> max_diameter;
  std::optional<int64_t> max_expansions;
  std::optional<bool> strict_merge_rule;
  // Execution-pipeline knobs (core/execution.h): which registered
  // SearchExecutor serves the query ("bnb", "parallel", "naive", or any
  // name added via ExecutorRegistry), its thread count, and the per-query
  // deadline / candidate-budget guard.
  std::optional<std::string> executor;
  std::optional<int> num_threads;
  std::optional<double> deadline_ms;
  std::optional<int64_t> candidate_budget;
  // Ranking knobs (core/ranker.h, core/order_by.h): which registered Ranker
  // scores answers, the optional multi-key presentation order, and the
  // composite ranker's mixing weights.
  std::optional<std::string> ranker;
  std::optional<std::string> order_by;
  std::optional<double> composite_rwmp_weight;
  std::optional<double> composite_text_weight;
  // Non-null replaces the engine default's bound provider.
  const PairwiseBoundProvider* bounds = nullptr;

  // --- Fluent builder -----------------------------------------------------
  // Each setter returns *this so calls chain:
  //   engine.Search(q, SearchOverrides().WithK(3).WithDeadlineMs(50));
  SearchOverrides& WithK(int value) {
    k = value;
    return *this;
  }
  SearchOverrides& WithMaxDiameter(uint32_t value) {
    max_diameter = value;
    return *this;
  }
  SearchOverrides& WithMaxExpansions(int64_t value) {
    max_expansions = value;
    return *this;
  }
  SearchOverrides& WithStrictMergeRule(bool value) {
    strict_merge_rule = value;
    return *this;
  }
  SearchOverrides& WithExecutor(std::string value) {
    executor = std::move(value);
    return *this;
  }
  SearchOverrides& WithNumThreads(int value) {
    num_threads = value;
    return *this;
  }
  SearchOverrides& WithDeadlineMs(double value) {
    deadline_ms = value;
    return *this;
  }
  SearchOverrides& WithCandidateBudget(int64_t value) {
    candidate_budget = value;
    return *this;
  }
  SearchOverrides& WithRanker(std::string value) {
    ranker = std::move(value);
    return *this;
  }
  SearchOverrides& WithOrderBy(std::string value) {
    order_by = std::move(value);
    return *this;
  }
  SearchOverrides& WithCompositeWeights(double rwmp_weight,
                                        double text_weight) {
    composite_rwmp_weight = rwmp_weight;
    composite_text_weight = text_weight;
    return *this;
  }
  SearchOverrides& WithBounds(const PairwiseBoundProvider* value) {
    bounds = value;
    return *this;
  }
};

// The single overrides-merge function. Every entry point that accepts a
// SearchOverrides — Search, SearchBatch, EffectiveOptions — resolves it
// through here, so the PR-2 footgun (an entry point silently substituting
// struct defaults for engine defaults) cannot reappear in one path only.
SearchOptions MergeOverrides(const SearchOptions& base,
                             const SearchOverrides& overrides);

struct QueryCacheOptions {
  // Total cached query results across shards; 0 disables the cache.
  size_t capacity = 1024;
  size_t shards = 8;
};

struct BatchSearchOptions {
  // Worker threads the batch is spread over (one query per task); values
  // < 1 are clamped to 1.
  int num_threads = 1;
  // Consult and fill the engine's query-result cache (no-op when the
  // engine was built with cache capacity 0).
  bool use_cache = true;
  // Merged over the engine's default SearchOptions for every query (via
  // MergeOverrides — the batch path owns no merge logic of its own).
  SearchOverrides overrides;
};

}  // namespace cirank

#endif  // CIRANK_CORE_OPTIONS_H_
