#include "core/ranker.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <optional>

#include "core/bounds.h"
#include "util/annotations.h"
#include "util/check.h"
#include "util/mutex.h"

namespace cirank {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// BM25 constants (Robertson-style defaults; fixed, not tunable — the
// composite's knobs are the mixing weights, not the text model).
constexpr double kBm25K1 = 1.2;
constexpr double kBm25B = 0.75;

// Per-(node, keyword) BM25 contribution with per-relation statistics.
double Bm25NodeTerm(const InvertedIndex& index, NodeId v,
                    const std::string& term) {
  const uint32_t tf = index.TermFrequency(v, term);
  if (tf == 0) return 0.0;
  const RelationId rel = index.graph().relation_of(v);
  const double n_rel = static_cast<double>(index.RelationSize(rel));
  const double df = static_cast<double>(index.DocFrequency(term, rel));
  const double idf = std::log(1.0 + (n_rel - df + 0.5) / (df + 0.5));
  double avdl = index.AvgTokenCount(rel);
  if (avdl <= 0.0) avdl = 1.0;
  const double dl = static_cast<double>(index.NodeTokenCount(v));
  const double tf_d = static_cast<double>(tf);
  const double norm = kBm25K1 * (1.0 - kBm25B + kBm25B * dl / avdl);
  return idf * tf_d * (kBm25K1 + 1.0) / (tf_d + norm);
}

// --- Built-in rankers ------------------------------------------------------

// The default: RWMP scoring (Eq. 4) with the Theorem-1 upper bound. Exact
// delegation to TreeScorer / UpperBoundCalculator, so routing the executors
// through the ranker layer is byte-identical to the pre-refactor pipeline.
class RwmpRanker final : public Ranker {
 public:
  explicit RwmpRanker(const RankerEnv& env) : scorer_(env.scorer) {
    if (env.query != nullptr) {
      calc_.emplace(*env.scorer, *env.query, env.options.max_diameter,
                    env.options.bounds);
    }
  }

  std::string_view name() const override { return "rwmp"; }
  double ScoreAnswer(const Jtt& tree, const Query& query) const override {
    return scorer_->Score(tree, query).score;
  }
  double UpperBound(const Candidate& c) const override {
    return calc_.has_value() ? calc_->UpperBound(c) : kInf;
  }
  int64_t bound_calls() const override {
    return calc_.has_value() ? calc_->calls() : 0;
  }

 private:
  const TreeScorer* scorer_;
  std::optional<UpperBoundCalculator> calc_;
};

// Weighted blend of RWMP and the BM25 text score:
//   score(T, Q) = w_rwmp * rwmp(T, Q) + w_text * bm25(T, Q).
// The text term is skipped entirely when w_text == 0, and 1.0 * x == x in
// IEEE arithmetic, so weights (1.0, 0.0) are bit-exactly the pure RWMP
// ranker (the degenerate-weights property test pins this down).
//
// Admissible bound: w_rwmp * ub_rwmp(c) + w_text * ub_text, where ub_text
// is the per-query constant sum over keywords of (k1+1) * max idf across
// the keyword's matching nodes — BM25's tf saturation tf/(tf+K) < 1 makes
// every realizable per-keyword text term smaller. A zero RWMP bound means
// some missing keyword provably cannot be supplied, so no answer derives
// from the candidate at all and the composite bound is 0 too.
class CompositeTextRanker final : public Ranker {
 public:
  explicit CompositeTextRanker(const RankerEnv& env)
      : scorer_(env.scorer),
        w_rwmp_(env.options.composite_rwmp_weight),
        w_text_(env.options.composite_text_weight) {
    if (env.query != nullptr) {
      calc_.emplace(*env.scorer, *env.query, env.options.max_diameter,
                    env.options.bounds);
      if (w_text_ != 0.0) {
        const InvertedIndex& index = env.scorer->index();
        text_bound_ = 0.0;
        for (const std::string& k : env.query->keywords) {
          double best_idf = 0.0;
          for (NodeId v : index.MatchingNodes(k)) {
            const RelationId rel = index.graph().relation_of(v);
            const double n_rel =
                static_cast<double>(index.RelationSize(rel));
            const double df =
                static_cast<double>(index.DocFrequency(k, rel));
            best_idf = std::max(
                best_idf, std::log(1.0 + (n_rel - df + 0.5) / (df + 0.5)));
          }
          text_bound_ += (kBm25K1 + 1.0) * best_idf;
        }
      }
    }
  }

  std::string_view name() const override { return "rwmp_x_text"; }

  double ScoreAnswer(const Jtt& tree, const Query& query) const override {
    double score = w_rwmp_ * scorer_->Score(tree, query).score;
    if (w_text_ != 0.0) {
      score += w_text_ * Bm25TextScore(scorer_->index(), tree, query);
    }
    return score;
  }

  double UpperBound(const Candidate& c) const override {
    if (!calc_.has_value()) return kInf;
    const double rwmp_ub = calc_->UpperBound(c);
    if (rwmp_ub == 0.0) return 0.0;  // provably no derivable answer
    double ub = w_rwmp_ * rwmp_ub;
    if (w_text_ != 0.0) ub += w_text_ * text_bound_;
    return ub;
  }

  int64_t bound_calls() const override {
    return calc_.has_value() ? calc_->calls() : 0;
  }

 private:
  const TreeScorer* scorer_;
  const double w_rwmp_;
  const double w_text_;
  std::optional<UpperBoundCalculator> calc_;
  double text_bound_ = 0.0;
};

// --- Rejected alternatives of Sec. III-B (ablations) -----------------------
// Moved here from src/eval/rankers.cc so the Fig. 6-9 sweeps and the serving
// path share one scoring implementation.

// Average importance of the non-free nodes only: ignores cohesiveness.
class AvgNonFreeImportanceRanker final : public Ranker {
 public:
  explicit AvgNonFreeImportanceRanker(const RankerEnv& env)
      : scorer_(env.scorer) {}

  std::string_view name() const override { return "avg-nonfree-importance"; }
  double ScoreAnswer(const Jtt& tree, const Query& query) const override {
    const RwmpModel& model = scorer_->model();
    const InvertedIndex& index = scorer_->index();
    double total = 0.0;
    size_t count = 0;
    for (NodeId v : tree.nodes()) {
      if (index.DistinctMatchedKeywords(v, query) > 0) {
        total += model.importance(v);
        ++count;
      }
    }
    return count == 0 ? 0.0 : total / static_cast<double>(count);
  }

 private:
  const TreeScorer* scorer_;
};

// Average importance of all nodes: suffers free-node domination (Fig. 4).
class AvgAllImportanceRanker final : public Ranker {
 public:
  explicit AvgAllImportanceRanker(const RankerEnv& env)
      : scorer_(env.scorer) {}

  std::string_view name() const override { return "avg-all-importance"; }
  double ScoreAnswer(const Jtt& tree, const Query& query) const override {
    (void)query;
    const RwmpModel& model = scorer_->model();
    double total = 0.0;
    for (NodeId v : tree.nodes()) total += model.importance(v);
    return total / static_cast<double>(tree.size());
  }

 private:
  const TreeScorer* scorer_;
};

// Average importance divided by tree size: blind to structure.
class AvgImportancePerSizeRanker final : public Ranker {
 public:
  explicit AvgImportancePerSizeRanker(const RankerEnv& env)
      : scorer_(env.scorer) {}

  std::string_view name() const override { return "avg-importance-per-size"; }
  double ScoreAnswer(const Jtt& tree, const Query& query) const override {
    (void)query;
    const RwmpModel& model = scorer_->model();
    double total = 0.0;
    for (NodeId v : tree.nodes()) total += model.importance(v);
    const double n = static_cast<double>(tree.size());
    return total / (n * n);  // average importance, then size-normalized again
  }

 private:
  const TreeScorer* scorer_;
};

Status ValidateRankerEnv(const RankerEnv& env) {
  if (env.scorer == nullptr) {
    return Status::InvalidArgument("ranker env missing scorer");
  }
  return Status::OK();
}

template <typename R>
Result<std::unique_ptr<Ranker>> MakeBuiltin(const RankerEnv& env) {
  CIRANK_RETURN_IF_ERROR(ValidateRankerEnv(env));
  std::unique_ptr<Ranker> ranker = std::make_unique<R>(env);
  return ranker;
}

}  // namespace

double Ranker::UpperBound(const Candidate& c) const {
  (void)c;
  return kInf;
}

double DelegatingRanker::UpperBound(const Candidate& c) const {
  return bound_ != nullptr ? bound_(c) : kInf;
}

double Bm25TextScore(const InvertedIndex& index, const Jtt& tree,
                     const Query& query) {
  double total = 0.0;
  for (const std::string& k : query.keywords) {
    double best = 0.0;
    for (NodeId v : tree.nodes()) {
      best = std::max(best, Bm25NodeTerm(index, v, k));
    }
    total += best;
  }
  return total;
}

// ---------------------------------------------------------------------------
// RankerRegistry

struct RankerRegistry::Impl {
  mutable Mutex mu;
  std::map<std::string, RankerFactory> factories CIRANK_GUARDED_BY(mu);
};

RankerRegistry::RankerRegistry() : impl_(std::make_unique<Impl>()) {}
RankerRegistry::~RankerRegistry() = default;

RankerRegistry& RankerRegistry::Global() {
  // The core rankers are registered on first use; baselines add theirs via
  // RegisterBaselineExecutors() (explicit, to avoid a core→baselines
  // dependency cycle and static-initialization-order traps).
  static RankerRegistry* registry = [] {
    auto* r = new RankerRegistry();
    CIRANK_CHECK_OK(r->Register("rwmp", MakeBuiltin<RwmpRanker>));
    CIRANK_CHECK_OK(
        r->Register("rwmp_x_text", MakeBuiltin<CompositeTextRanker>));
    CIRANK_CHECK_OK(r->Register("avg-nonfree-importance",
                                MakeBuiltin<AvgNonFreeImportanceRanker>));
    CIRANK_CHECK_OK(r->Register("avg-all-importance",
                                MakeBuiltin<AvgAllImportanceRanker>));
    CIRANK_CHECK_OK(r->Register("avg-importance-per-size",
                                MakeBuiltin<AvgImportancePerSizeRanker>));
    return r;
  }();
  return *registry;
}

Status RankerRegistry::Register(std::string name, RankerFactory factory) {
  if (name.empty()) return Status::InvalidArgument("ranker name is empty");
  if (factory == nullptr) {
    return Status::InvalidArgument("ranker factory is null");
  }
  MutexLock lk(impl_->mu);
  if (!impl_->factories.emplace(std::move(name), std::move(factory)).second) {
    return Status::InvalidArgument("ranker already registered");
  }
  return Status::OK();
}

Result<std::unique_ptr<Ranker>> RankerRegistry::Create(
    const std::string& name, const RankerEnv& env) const {
  RankerFactory factory;
  {
    MutexLock lk(impl_->mu);
    auto it = impl_->factories.find(name);
    if (it == impl_->factories.end()) {
      std::string known;
      for (const auto& [n, f] : impl_->factories) {
        (void)f;
        if (!known.empty()) known += ", ";
        known += n;
      }
      return Status::NotFound("unknown ranker '" + name +
                              "' (registered: " + known + ")");
    }
    factory = it->second;
  }
  return factory(env);
}

bool RankerRegistry::Contains(const std::string& name) const {
  MutexLock lk(impl_->mu);
  return impl_->factories.count(name) != 0;
}

std::vector<std::string> RankerRegistry::Names() const {
  MutexLock lk(impl_->mu);
  std::vector<std::string> names;
  names.reserve(impl_->factories.size());
  for (const auto& [n, f] : impl_->factories) {
    (void)f;
    names.push_back(n);
  }
  return names;
}

}  // namespace cirank
