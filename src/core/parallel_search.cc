#include "core/parallel_search.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <string>
#include <utility>

#include "core/ranker.h"
#include "core/topk.h"
#include "util/annotations.h"
#include "util/check.h"
#include "util/mutex.h"
#include "util/thread_pool.h"

namespace cirank {

namespace {

constexpr size_t kNotAdmitted = static_cast<size_t>(-1);

// One admitted candidate, placed into the per-query arena (stable address;
// wholesale release at query end). The chain bound is the Theorem-1 audit
// value (minimum upper bound along the grow/merge derivation), and the leaf
// count is cached for the merge pre-filter.
struct ArenaEntry {
  Candidate c;
  double chain_bound = 0.0;
  uint32_t non_root_leaves = 0;
};

struct RegistryEntry {
  size_t idx;
  uint32_t non_root_leaves;
  KeywordMask covered;
};

// Everything the workers share. Container *structure* (indexing, push_back,
// queue ops) and arena allocation are only touched under `mu` — the
// CIRANK_GUARDED_BY annotations make the `tsa` preset prove it. The
// Candidate payloads are immutable after admission, so workers read them
// through stable arena pointers outside the lock (the ArenaEntry* values
// escape the capability on purpose; the *vector* of slots does not).
struct SharedState {
  explicit SharedState(size_t k) : answers(k) {}

  // mutable: Emit/FillStats read the counters through a const executor
  // after the pool has joined, and still take the lock to satisfy the
  // capability model (uncontended by then).
  mutable Mutex mu;
  CondVar cv;
  std::priority_queue<std::pair<double, size_t>> queue
      CIRANK_GUARDED_BY(mu);  // (ub, slot idx)
  std::vector<ArenaEntry*> slots CIRANK_GUARDED_BY(mu);
  std::map<NodeId, std::vector<RegistryEntry>> by_root CIRANK_GUARDED_BY(mu);
  std::set<std::string> seen CIRANK_GUARDED_BY(mu);
  TopKAnswers answers CIRANK_GUARDED_BY(mu);

  // Workers currently expanding a popped candidate.
  size_t in_flight CIRANK_GUARDED_BY(mu) = 0;
  bool budget_exhausted CIRANK_GUARDED_BY(mu) = false;
  int64_t popped CIRANK_GUARDED_BY(mu) = 0;
  int64_t generated CIRANK_GUARDED_BY(mu) = 0;
  int64_t merged CIRANK_GUARDED_BY(mu) = 0;
  int64_t answers_found CIRANK_GUARDED_BY(mu) = 0;
  // Theorem-1 audit value: the largest bound ever discarded by the
  // frontier-wide prune (SearchStats::max_pruned_bound).
  double max_pruned_bound CIRANK_GUARDED_BY(mu) = 0.0;
  // Viability/diameter rejections happen outside the lock, frontier prunes
  // inside it; one atomic serves both without widening the critical section.
  std::atomic<int64_t> pruned{0};
};

// Per-thread search context: owns a private Ranker (the rwmp ranker's
// bound-state memo caches are not thread-safe) and runs the pop/expand loop
// against the shared state under the query's ExecutionContext.
class Worker {
 public:
  Worker(SharedState* shared, ExecutionContext* ctx, const TreeScorer* scorer,
         const Query* query, const SearchOptions* options,
         std::unique_ptr<Ranker> ranker)
      : s_(shared),
        ctx_(ctx),
        scorer_(scorer),
        query_(query),
        options_(options),
        ranker_(std::move(ranker)),
        all_((KeywordMask{1} << query->size()) - 1) {}

  int64_t bound_calls() const { return ranker_->bound_calls(); }

  // Admits a candidate into the shared state. The dedup insert runs first
  // (short lock) so exactly one worker pays for the bound/score computation
  // of any candidate; the heavy work then runs unlocked, and a second lock
  // publishes the result. Returns the slot index, or kNotAdmitted.
  size_t TryAdmit(Candidate&& c, double ancestor_bound, bool from_merge) {
    if (c.diameter > options_->max_diameter ||
        !IsViableCandidate(c, *query_, scorer_->index())) {
      s_->pruned.fetch_add(1, std::memory_order_relaxed);
      return kNotAdmitted;
    }
    std::string key = CandidateKey(c);
    {
      MutexLock lk(s_->mu);
      if (!s_->seen.insert(std::move(key)).second) return kNotAdmitted;
      ++s_->generated;
      if (from_merge) ++s_->merged;
    }
    // Budget accounting: exhaustion latches the context's stop flag (all
    // workers observe it); the candidate just admitted still completes so
    // the partial state stays consistent.
    (void)ctx_->ChargeCandidates(1);

    c.upper_bound = ranker_->UpperBound(c);
    const double chain_bound = std::min(ancestor_bound, c.upper_bound);
    const uint32_t leaves = NonRootLeafCount(c);

    Jtt canon;
    double score = 0.0;
    bool complete = false;
    if (c.IsComplete(all_) && c.tree.IsReduced(*query_, scorer_->index())) {
      complete = true;
      canon = c.tree.Canonicalized();
      score = ranker_->ScoreAnswer(canon, *query_);
      CIRANK_DCHECK(score <=
                    chain_bound + 1e-9 * std::max(1.0, std::abs(chain_bound)))
          << "Theorem 1 admissibility violated: emitted tree "
          << canon.CanonicalKey() << " scores " << score
          << " above its derivation-chain bound " << chain_bound;
    }

    const NodeId root = c.root();
    const KeywordMask covered = c.covered;
    const double ub = c.upper_bound;
    MutexLock lk(s_->mu);
    if (complete && s_->answers.Offer(std::move(canon), score)) {
      ++s_->answers_found;
    }
    ArenaEntry* entry =
        ctx_->arena().New<ArenaEntry>(ArenaEntry{std::move(c), chain_bound,
                                                 leaves});
    s_->slots.push_back(entry);
    const size_t idx = s_->slots.size() - 1;
    if (ub > 0.0) {
      s_->queue.push({ub, idx});
      s_->cv.NotifyOne();  // work arrived; wake one idle worker
    }
    s_->by_root[root].push_back(RegistryEntry{idx, leaves, covered});
    return idx;
  }

  // Closure of Alg. 1's Smerge step over the newly admitted candidate, as
  // in the serial search: merge against a snapshot of the co-rooted
  // registry, cascading over freshly created merges.
  void MergeClosure(size_t start_idx) {
    const uint32_t max_leaves = static_cast<uint32_t>(query_->size());
    std::vector<size_t> worklist{start_idx};
    while (!worklist.empty()) {
      if (ctx_->stopped()) return;
      const size_t idx = worklist.back();
      worklist.pop_back();
      const ArenaEntry* me;
      std::vector<RegistryEntry> partners;
      {
        MutexLock lk(s_->mu);
        me = s_->slots[idx];
        partners = s_->by_root[me->c.root()];
      }
      for (const RegistryEntry& other : partners) {
        if (other.idx == idx) continue;
        if (me->non_root_leaves + other.non_root_leaves > max_leaves) continue;
        if (options_->strict_merge_rule) {
          const KeywordMask merged_mask = me->c.covered | other.covered;
          if (merged_mask == me->c.covered || merged_mask == other.covered) {
            continue;
          }
        }
        const ArenaEntry* oe;
        {
          MutexLock lk(s_->mu);
          oe = s_->slots[other.idx];
        }
        Result<Candidate> merged =
            MergeCandidates(me->c, oe->c, options_->strict_merge_rule);
        if (!merged.ok()) continue;
        const double parents_bound =
            std::min(me->chain_bound, oe->chain_bound);
        const size_t nidx = TryAdmit(std::move(merged).value(), parents_bound,
                                     /*from_merge=*/true);
        if (nidx != kNotAdmitted) worklist.push_back(nidx);
      }
    }
  }

  // Grow step for one popped candidate (runs unlocked; `e` is a stable
  // arena pointer).
  void ExpandCandidate(const ArenaEntry* e) {
    const Graph& graph = scorer_->model().graph();
    const NodeId root = e->c.root();
    std::vector<NodeId> neighbors;
    for (const Edge& edge : graph.out_edges(root)) {
      if (!e->c.tree.contains(edge.to)) neighbors.push_back(edge.to);
    }
    for (NodeId nb : neighbors) {
      if (ctx_->stopped()) return;
      Candidate grown = GrowCandidate(e->c, nb, *query_, scorer_->index());
      const size_t idx = TryAdmit(std::move(grown), e->chain_bound,
                                  /*from_merge=*/false);
      if (idx != kNotAdmitted) MergeClosure(idx);
    }
  }

  // The pop/expand loop. Termination: the queue is empty (or wholly
  // prunable/stopped, which empties it) AND no worker is mid-expansion —
  // only then can no new work appear. Workers otherwise sleep on the cv and
  // are woken by queue pushes or by the last in-flight expansion finishing.
  // Hand-over-hand locking (release around ExpandCandidate) is written with
  // explicit Lock/Unlock so the analysis can follow the lock state through
  // every branch.
  void Run() {
    s_->mu.Lock();
    for (;;) {
      if (s_->budget_exhausted || ctx_->stopped()) {
        s_->queue = {};
      } else if (ctx_->ShouldStop()) {
        // Deadline or candidate budget: drain the frontier so every worker
        // falls through to termination with the best-so-far answers.
        s_->queue = {};
        s_->cv.NotifyAll();
      } else if (options_->max_expansions > 0 &&
                 s_->popped >= options_->max_expansions &&
                 !s_->queue.empty()) {
        s_->budget_exhausted = true;
        s_->queue = {};
        s_->cv.NotifyAll();
      } else if (!s_->queue.empty() && s_->answers.Full() &&
                 s_->queue.top().first < s_->answers.MinScore()) {
        // The top of the max-heap cannot beat (or canonically displace a
        // tie with) the k-th answer, so nothing below it can either:
        // discard the whole frontier. The threshold only ever rises, so
        // this is final.
        s_->max_pruned_bound =
            std::max(s_->max_pruned_bound, s_->queue.top().first);
        s_->pruned.fetch_add(static_cast<int64_t>(s_->queue.size()),
                             std::memory_order_relaxed);
        s_->queue = {};
      }
      if (s_->queue.empty()) {
        if (s_->in_flight == 0) {
          s_->cv.NotifyAll();
          s_->mu.Unlock();
          return;
        }
        s_->cv.Wait(s_->mu);
        continue;
      }
      const auto [ub, idx] = s_->queue.top();
      s_->queue.pop();
      CIRANK_DCHECK(ub == s_->slots[idx]->c.upper_bound);
      ++s_->popped;
      ++s_->in_flight;
      const ArenaEntry* e = s_->slots[idx];
      s_->mu.Unlock();
      ExpandCandidate(e);
      s_->mu.Lock();
      --s_->in_flight;
      if (s_->in_flight == 0) s_->cv.NotifyAll();
    }
  }

 private:
  SharedState* s_;
  ExecutionContext* ctx_;
  const TreeScorer* scorer_;
  const Query* query_;
  const SearchOptions* options_;
  std::unique_ptr<Ranker> ranker_;
  KeywordMask all_;
};

// The "parallel" executor. Prepare builds one Worker per thread and seeds
// the shared frontier single-threaded; Expand runs the workers on a
// ThreadPool until the frontier is exhausted, pruned away, or the context
// stops the query; Emit takes the shared top-k and folds the per-worker
// counters into the stage stats.
class ParallelBnbExecutor final : public SearchExecutor {
 public:
  explicit ParallelBnbExecutor(const ExecutorEnv& env)
      : scorer_(*env.scorer),
        query_(*env.query),
        options_(env.options),
        shared_(static_cast<size_t>(env.options.k)) {}

  std::string_view name() const override { return "parallel"; }

  Status Prepare(ExecutionContext& ctx) override {
    ctx_ = &ctx;
    workers_.reserve(static_cast<size_t>(options_.num_threads));
    for (int i = 0; i < options_.num_threads; ++i) {
      // One ranker per worker: ranker instances are not thread-safe (the
      // rwmp bound state memoizes), exactly like the calculators they
      // replaced. Scores stay byte-identical across workers because every
      // ranker is a pure function of the same immutable model.
      CIRANK_ASSIGN_OR_RETURN(
          std::unique_ptr<Ranker> ranker,
          RankerRegistry::Global().Create(
              options_.ranker, RankerEnv{&scorer_, &query_, options_}));
      workers_.push_back(std::make_unique<Worker>(
          &shared_, &ctx, &scorer_, &query_, &options_, std::move(ranker)));
    }

    // Seed with single-node candidates for every non-free node, exactly as
    // in the serial search. Seeds have distinct roots, so no merges can
    // trigger yet; running this before the pool starts keeps it
    // single-threaded.
    constexpr double kInf = std::numeric_limits<double>::infinity();
    const InvertedIndex& index = scorer_.index();
    std::set<NodeId> seeds;
    for (const std::string& k : query_.keywords) {
      for (NodeId v : index.MatchingNodes(k)) seeds.insert(v);
    }
    for (NodeId v : seeds) {
      Candidate c;
      c.tree = Jtt(v);
      c.covered = NodeKeywordMask(v, query_, index);
      c.diameter = 0;
      workers_[0]->TryAdmit(std::move(c), kInf, /*from_merge=*/false);
      if (ctx.ShouldStop()) break;
    }
    return Status::OK();
  }

  Status Expand(ExecutionContext& ctx) override {
    {
      ThreadPool pool(options_.num_threads);
      for (auto& w : workers_) {
        Worker* worker = w.get();
        pool.Submit([worker] { worker->Run(); });
      }
      pool.WaitIdle();
    }
    return ctx.stopped() ? ctx.stop_status() : Status::OK();
  }

  // Emit/FillStats run after the pool has joined, so the lock below is
  // uncontended — it is taken anyway because the counters are capability-
  // guarded and the analysis (rightly) does not model "the threads are
  // gone" as a synchronization event.
  Result<std::vector<RankedAnswer>> Emit(ExecutionContext& ctx) override {
    StageStats& stages = ctx.stages();
    MutexLock lk(shared_.mu);
    stages.candidates_generated = shared_.generated;
    stages.candidates_merged = shared_.merged;
    stages.candidates_pruned =
        shared_.pruned.load(std::memory_order_relaxed);
    for (const auto& w : workers_) stages.bound_calls += w->bound_calls();
    return shared_.answers.Take();
  }

  void FillStats(SearchStats* stats) const override {
    stats->ranker = options_.ranker;
    MutexLock lk(shared_.mu);
    stats->popped = shared_.popped;
    stats->generated = shared_.generated;
    stats->answers_found = shared_.answers_found;
    stats->budget_exhausted = shared_.budget_exhausted;
    stats->proven_optimal = !shared_.budget_exhausted;
    stats->max_pruned_bound = shared_.max_pruned_bound;
  }

 private:
  const TreeScorer& scorer_;
  const Query& query_;
  const SearchOptions options_;
  ExecutionContext* ctx_ = nullptr;
  SharedState shared_;
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace

Result<std::unique_ptr<SearchExecutor>> MakeParallelBnbExecutor(
    const ExecutorEnv& env) {
  if (env.scorer == nullptr || env.query == nullptr) {
    return Status::InvalidArgument("executor env missing scorer or query");
  }
  if (env.query->empty()) return Status::InvalidArgument("empty query");
  if (env.query->size() > Query::kMaxKeywords) {
    return Status::InvalidArgument("at most 31 keywords are supported");
  }
  if (env.options.k <= 0) return Status::InvalidArgument("k must be positive");
  if (env.options.num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  std::unique_ptr<SearchExecutor> executor =
      std::make_unique<ParallelBnbExecutor>(env);
  return executor;
}

Result<std::vector<RankedAnswer>> ParallelBnbSearch(
    const TreeScorer& scorer, const Query& query, const SearchOptions& options,
    const ParallelSearchOptions& parallel, SearchStats* stats) {
  ExecutorEnv env{&scorer, &query, options};
  env.options.num_threads = parallel.num_threads;
  CIRANK_ASSIGN_OR_RETURN(std::unique_ptr<SearchExecutor> executor,
                          MakeParallelBnbExecutor(env));
  ExecutionContext ctx(ExecutionLimits::FromOptions(options));
  return RunSearchPipeline(*executor, ctx, stats);
}

}  // namespace cirank
