// Branch-and-bound top-k search (Algorithm 1 of Sec. IV-B). Candidate trees
// are expanded by tree growing and tree merging, prioritized by their upper
// bounds; the search stops once the best remaining upper bound cannot beat
// the current k-th answer (Theorem 1 guarantees optimality).
//
// The implementation is the "bnb" SearchExecutor of the unified execution
// pipeline (core/execution.h): candidates live in the per-query arena, the
// deadline/candidate-budget guard can truncate the search, and per-stage
// counters land in StageStats. BranchAndBoundSearch below is the classic
// one-call entry point, now a thin wrapper over that executor.
#ifndef CIRANK_CORE_BNB_SEARCH_H_
#define CIRANK_CORE_BNB_SEARCH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/bounds.h"
#include "core/candidate.h"
#include "core/execution.h"
#include "core/scorer.h"

namespace cirank {

// Factory for the "bnb" executor (registered in ExecutorRegistry::Global).
// Fails on empty queries, queries with more than Query::kMaxKeywords
// keywords, or non-positive k.
[[nodiscard]] Result<std::unique_ptr<SearchExecutor>> MakeBnbExecutor(
    const ExecutorEnv& env);

// Runs Algorithm 1. Returns answers sorted by descending score, ties broken
// by ascending canonical tree key. Candidates are pruned only when their
// upper bound is strictly below the current k-th score, which makes the
// result a canonical function of (scorer, query, options) — independent of
// expansion order — whenever the expansion budget is not hit: every answer
// tying with the k-th score is found, so the (score, canonical key) order
// is total over the candidates for the last slots. ParallelBnbSearch
// (parallel_search.h) returns byte-identical results for the same reason.
// Fails on empty queries, queries with more than 31 keywords, or
// non-positive k.
//
// DEPRECATED for application code: call CiRankEngine::Search with
// SearchOptions/SearchOverrides (executor = "bnb") instead — the engine
// routes through ExecutorRegistry and adds caching, metrics, and tracing
// that this direct entry point bypasses. Kept for differential tests and
// library-internal use.
[[nodiscard]] Result<std::vector<RankedAnswer>> BranchAndBoundSearch(
    const TreeScorer& scorer, const Query& query, const SearchOptions& options,
    SearchStats* stats = nullptr);

}  // namespace cirank

#endif  // CIRANK_CORE_BNB_SEARCH_H_
