// Branch-and-bound top-k search (Algorithm 1 of Sec. IV-B). Candidate trees
// are expanded by tree growing and tree merging, prioritized by their upper
// bounds; the search stops once the best remaining upper bound cannot beat
// the current k-th answer (Theorem 1 guarantees optimality).
#ifndef CIRANK_CORE_BNB_SEARCH_H_
#define CIRANK_CORE_BNB_SEARCH_H_

#include <cstdint>
#include <vector>

#include "core/bounds.h"
#include "core/candidate.h"
#include "core/scorer.h"

namespace cirank {

struct SearchOptions {
  // Number of answers to return.
  int k = 10;
  // Answer-tree diameter limit D (Sec. IV, "we put a limit D on the diameter
  // of answer trees").
  uint32_t max_diameter = 4;
  // Safety valve: maximum number of candidates dequeued before the search
  // gives up optimality and returns the best answers found. 0 = unlimited.
  int64_t max_expansions = 0;
  // Optional pairwise bound provider from the index module; null disables
  // index-assisted bounds.
  const PairwiseBoundProvider* bounds = nullptr;
  // Use the paper's literal merge rule ("the result covers more keywords
  // than either input"). Off by default: the strict rule can make some
  // valid answers unreachable; the default relies on candidate-viability
  // pruning instead (see candidate.h), which preserves Theorem 1.
  bool strict_merge_rule = false;
};

struct RankedAnswer {
  Jtt tree;
  double score = 0.0;
};

struct SearchStats {
  int64_t popped = 0;          // candidates dequeued and expanded
  int64_t generated = 0;       // candidates created by grow/merge
  int64_t answers_found = 0;   // distinct complete answers scored
  bool budget_exhausted = false;
  bool proven_optimal = false;
  // Largest upper bound ever discarded by the stopping rule (0 when nothing
  // was pruned). By Lemma 1 every answer derivable from a pruned candidate
  // scores at most this, so admissibility demands it stay strictly below
  // the k-th returned score; the property test asserts exactly that.
  double max_pruned_bound = 0.0;
};

// Runs Algorithm 1. Returns answers sorted by descending score, ties broken
// by ascending canonical tree key. Candidates are pruned only when their
// upper bound is strictly below the current k-th score, which makes the
// result a canonical function of (scorer, query, options) — independent of
// expansion order — whenever the expansion budget is not hit: every answer
// tying with the k-th score is found, so the (score, canonical key) order
// is total over the candidates for the last slots. ParallelBnbSearch
// (parallel_search.h) returns byte-identical results for the same reason.
// Fails on empty queries, queries with more than 31 keywords, or
// non-positive k.
[[nodiscard]] Result<std::vector<RankedAnswer>> BranchAndBoundSearch(
    const TreeScorer& scorer, const Query& query, const SearchOptions& options,
    SearchStats* stats = nullptr);

}  // namespace cirank

#endif  // CIRANK_CORE_BNB_SEARCH_H_
