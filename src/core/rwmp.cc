#include "core/rwmp.h"

#include <algorithm>
#include <cmath>

namespace cirank {

Status RwmpParams::Validate() const {
  if (!(alpha > 0.0 && alpha < 1.0)) {
    return Status::InvalidArgument("alpha must be in (0, 1)");
  }
  if (!(g > 1.0)) {
    return Status::InvalidArgument("g must be > 1");
  }
  return Status::OK();
}

Result<RwmpModel> RwmpModel::Create(const Graph& graph,
                                    std::vector<double> importance,
                                    const RwmpParams& params) {
  CIRANK_RETURN_IF_ERROR(params.Validate());
  if (importance.size() != graph.num_nodes()) {
    return Status::InvalidArgument(
        "importance vector size must equal the node count");
  }
  if (graph.num_nodes() == 0) {
    return Status::InvalidArgument("empty graph");
  }

  RwmpModel model;
  model.graph_ = &graph;
  model.params_ = params;

  double p_min = *std::min_element(importance.begin(), importance.end());
  if (p_min <= 0.0) {
    return Status::InvalidArgument("importance values must be positive");
  }
  model.p_min_ = p_min;
  model.total_surfers_ = 1.0 / p_min;

  const double log_g = std::log(params.g);
  model.dampening_.resize(importance.size());
  double max_d = 0.0;
  for (size_t v = 0; v < importance.size(); ++v) {
    const double ratio = importance[v] / p_min;  // >= 1
    const double steps = 1.0 + std::log(ratio) / log_g;
    const double d = 1.0 - std::pow(1.0 - params.alpha, steps);
    model.dampening_[v] = d;
    max_d = std::max(max_d, d);
  }
  model.max_dampening_ = max_d;
  model.importance_ = std::move(importance);
  return model;
}

double RwmpModel::Emission(NodeId v, const Query& query,
                           const InvertedIndex& index) const {
  const uint32_t total_tokens = index.NodeTokenCount(v);
  if (total_tokens == 0) return 0.0;
  const uint32_t matched = index.MatchedTokenCount(v, query);
  if (matched == 0) return 0.0;
  return total_surfers_ * importance_[v] * static_cast<double>(matched) /
         static_cast<double>(total_tokens);
}

}  // namespace cirank
