// Scatter-gather hooks the sharded serving layer (src/shard) plugs into the
// branch-and-bound executor. A shard is a *search scope* over the one shared
// engine — not a physical subgraph: PageRank (and hence every RWMP score) is
// a global property of the full graph, so partitioned per-shard models would
// change scores and break the byte-identity guarantee. Instead every shard
// searches the same model restricted to a node mask, and the hooks let
// concurrently running shards share one global pruning threshold:
//
//   InScope(v)        — membership test for this shard's node mask. The bnb
//                       executor drops out-of-scope seeds and never grows a
//                       tree across the scope boundary.
//   PublishAnswer     — called once per distinct complete answer found in
//                       this shard (keyed by canonical tree, exactly the
//                       TopKAnswers dedup rule) so the gatherer can raise the
//                       global k-th-score threshold.
//   GlobalThreshold   — current k-th best *distinct* published score across
//                       all shards, or -inf until k distinct answers exist.
//                       A shard whose best remaining upper bound is strictly
//                       below it can stop expanding: by Theorem 1 nothing it
//                       still holds can enter the global top-k (the strict
//                       inequality keeps tie-scoring answers expanding, so
//                       canonical-key tie-breaks stay byte-identical).
//
// The interface is logically const — implementations synchronize internally
// (the engine's Search() is likewise const yet touches the query cache) —
// so it can be carried by SearchOptions as a const pointer, mirroring the
// PairwiseBoundProvider plumbing. Null means unsharded: every call site
// must behave byte-identically when no hooks are installed.
#ifndef CIRANK_CORE_SHARD_HOOKS_H_
#define CIRANK_CORE_SHARD_HOOKS_H_

#include <cstdint>
#include <string>

namespace cirank {

class ShardHooks {
 public:
  virtual ~ShardHooks() = default;

  // True when node `v` belongs to this shard's search scope.
  virtual bool InScope(uint32_t v) const = 0;

  // Reports a distinct complete answer (canonical tree key + its score)
  // found by this shard. Implementations must deduplicate by key across
  // shards before counting the score toward the global threshold —
  // overlapping scopes surface the same answer from several shards, and
  // double-counting would overstate the k-th score and over-prune.
  virtual void PublishAnswer(const std::string& canonical_key,
                             double score) const = 0;

  // The global pruning threshold: the k-th best distinct published score,
  // or -infinity while fewer than k distinct answers have been published.
  virtual double GlobalThreshold() const = 0;
};

}  // namespace cirank

#endif  // CIRANK_CORE_SHARD_HOOKS_H_
