#include "core/order_by.h"

#include <algorithm>
#include <string>

#include "core/execution.h"

namespace cirank {

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

Result<OrderKey::Field> ParseField(std::string_view name) {
  if (name == "score") return OrderKey::Field::kScore;
  if (name == "root") return OrderKey::Field::kRoot;
  if (name == "external_key") return OrderKey::Field::kExternalKey;
  if (name == "relation") return OrderKey::Field::kRelation;
  if (name == "size") return OrderKey::Field::kSize;
  if (name == "text") return OrderKey::Field::kText;
  return Status::InvalidArgument(
      "unknown order_by field '" + std::string(name) +
      "' (known: score, root, external_key, relation, size, text)");
}

// Three-way comparison of one key; < 0 when a orders before b.
int CompareKey(const OrderKey& key, const Graph& graph,
               const RankedAnswer& a, const RankedAnswer& b) {
  auto cmp = [](auto x, auto y) { return x < y ? -1 : (y < x ? 1 : 0); };
  int c = 0;
  switch (key.field) {
    case OrderKey::Field::kScore:
      c = cmp(a.score, b.score);
      break;
    case OrderKey::Field::kRoot:
      c = cmp(a.tree.root(), b.tree.root());
      break;
    case OrderKey::Field::kExternalKey:
      c = cmp(graph.external_key_of(a.tree.root()),
              graph.external_key_of(b.tree.root()));
      break;
    case OrderKey::Field::kRelation:
      c = cmp(graph.relation_of(a.tree.root()),
              graph.relation_of(b.tree.root()));
      break;
    case OrderKey::Field::kSize:
      c = cmp(a.tree.size(), b.tree.size());
      break;
    case OrderKey::Field::kText:
      c = graph.text_of(a.tree.root()).compare(graph.text_of(b.tree.root()));
      break;
  }
  return key.descending ? -c : c;
}

}  // namespace

Result<std::vector<OrderKey>> ParseOrderBy(std::string_view spec) {
  std::vector<OrderKey> keys;
  if (Trim(spec).empty()) return keys;
  size_t start = 0;
  while (start <= spec.size()) {
    const size_t comma = spec.find(',', start);
    std::string_view entry = Trim(
        spec.substr(start, comma == std::string_view::npos ? std::string_view::npos
                                                           : comma - start));
    if (entry.empty()) {
      return Status::InvalidArgument("empty order_by entry in '" +
                                     std::string(spec) + "'");
    }
    OrderKey key;
    std::string_view field_name = entry;
    const size_t space = entry.find_first_of(" \t");
    if (space != std::string_view::npos) {
      field_name = entry.substr(0, space);
      const std::string_view dir = Trim(entry.substr(space));
      if (dir == "asc") {
        key.descending = false;
      } else if (dir == "desc") {
        key.descending = true;
      } else {
        return Status::InvalidArgument("unknown order_by direction '" +
                                       std::string(dir) +
                                       "' (expected asc or desc)");
      }
    }
    CIRANK_ASSIGN_OR_RETURN(key.field, ParseField(field_name));
    keys.push_back(key);
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return keys;
}

void ApplyOrderBy(const std::vector<OrderKey>& keys, const Graph& graph,
                  std::vector<RankedAnswer>* answers) {
  if (keys.empty() || answers == nullptr) return;
  std::sort(answers->begin(), answers->end(),
            [&](const RankedAnswer& a, const RankedAnswer& b) {
              for (const OrderKey& key : keys) {
                const int c = CompareKey(key, graph, a, b);
                if (c != 0) return c < 0;
              }
              // Implicit final tiebreak: the canonical tree encoding,
              // ascending — makes the order total and shuffle-invariant.
              return a.tree.CanonicalKey() < b.tree.CanonicalKey();
            });
}

}  // namespace cirank
