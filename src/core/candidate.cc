#include "core/candidate.h"

#include <algorithm>

#include "util/check.h"

namespace cirank {

KeywordMask NodeKeywordMask(NodeId v, const Query& query,
                            const InvertedIndex& index) {
  CIRANK_DCHECK(query.size() <= 31);
  KeywordMask mask = 0;
  for (size_t i = 0; i < query.keywords.size(); ++i) {
    if (index.TermFrequency(v, query.keywords[i]) > 0) {
      mask |= KeywordMask{1} << i;
    }
  }
  return mask;
}

Candidate GrowCandidate(const Candidate& c, NodeId new_root,
                        const Query& query, const InvertedIndex& index) {
  CIRANK_DCHECK(!c.tree.contains(new_root));
  std::vector<std::pair<NodeId, NodeId>> edges = c.tree.edges();
  edges.emplace_back(new_root, c.root());
  Result<Jtt> tree = Jtt::Create(new_root, std::move(edges));
  CIRANK_CHECK_OK(tree.status());

  Candidate grown;
  grown.tree = std::move(tree).value();
  grown.covered = c.covered | NodeKeywordMask(new_root, query, index);
  grown.diameter = grown.tree.Diameter();
  return grown;
}

Result<Candidate> MergeCandidates(const Candidate& a, const Candidate& b,
                                  bool strict_coverage_growth) {
  if (a.root() != b.root()) {
    return Status::InvalidArgument("merge requires a common root");
  }
  // Sanity check (cycle avoidance): node sets may only share the root.
  for (NodeId v : a.tree.nodes()) {
    if (v != a.root() && b.tree.contains(v)) {
      return Status::InvalidArgument("merge would create a cycle");
    }
  }
  const KeywordMask merged_mask = a.covered | b.covered;
  if (strict_coverage_growth &&
      (merged_mask == a.covered || merged_mask == b.covered)) {
    return Status::InvalidArgument(
        "merge must cover strictly more keywords than both inputs");
  }

  std::vector<std::pair<NodeId, NodeId>> edges = a.tree.edges();
  edges.insert(edges.end(), b.tree.edges().begin(), b.tree.edges().end());
  CIRANK_ASSIGN_OR_RETURN(Jtt merged_tree,
                          Jtt::Create(a.root(), std::move(edges)));

  Candidate merged;
  merged.tree = std::move(merged_tree);
  merged.covered = merged_mask;
  merged.diameter = merged.tree.Diameter();
  return merged;
}

uint32_t NonRootLeafCount(const Candidate& c) {
  if (c.tree.size() <= 1) return 0;
  uint32_t leaves = 0;
  const size_t root_index = c.tree.IndexOf(c.root());
  for (size_t i = 0; i < c.tree.size(); ++i) {
    if (i != root_index && c.tree.NeighborIndices(i).size() == 1) {
      ++leaves;
    }
  }
  return leaves;
}

bool IsViableCandidate(const Candidate& c, const Query& query,
                       const InvertedIndex& index) {
  if (c.tree.size() == 1) {
    // Seeds are non-free nodes; always viable.
    return true;
  }
  std::vector<NodeId> non_root_leaves;
  for (NodeId v : c.tree.nodes()) {
    if (v != c.root() && c.tree.TreeNeighbors(v).size() == 1) {
      non_root_leaves.push_back(v);
    }
  }
  return MatchableToDistinctKeywords(non_root_leaves, query, index);
}

}  // namespace cirank
