// CiRankEngine: the public entry point of the library. Owns the derived
// state for one data graph (inverted index, PageRank importance, RWMP
// model) and serves top-k keyword queries — single, batched across a
// thread pool, and memoized through a sharded LRU result cache that user
// feedback invalidates.
//
// Typical use:
//   Graph graph = ...;                       // build via GraphBuilder
//   auto engine = CiRankEngine::Build(graph);
//   auto answers = engine->Search(Query::MustParse("papakonstantinou ullman"));
//   auto batch = engine->SearchBatch(queries, {.num_threads = 8});
//
// Thread-safety: after Build, Search / SearchBatch / RecordFeedback /
// RecordClick may be called concurrently from any number of threads.
// RebuildFromFeedback mutates the model in place and requires the caller to
// quiesce search traffic first (it fails rather than race when it can see
// searches in flight).
#ifndef CIRANK_CORE_ENGINE_H_
#define CIRANK_CORE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/bnb_search.h"
#include "core/feedback.h"
#include "core/naive_search.h"
#include "core/rwmp.h"
#include "core/scorer.h"
#include "graph/graph.h"
#include "rw/pagerank.h"
#include "text/inverted_index.h"

namespace cirank {

struct QueryCacheOptions {
  // Total cached query results across shards; 0 disables the cache.
  size_t capacity = 1024;
  size_t shards = 8;
};

struct CiRankOptions {
  RwmpParams rwmp;          // alpha and g (Eq. 2)
  PageRankOptions pagerank;  // teleport constant etc. (Eq. 1)
  SearchOptions search;      // defaults for Search() calls
  QueryCacheOptions cache;   // query-result cache sizing
};

// Per-call overrides that are merged over the engine's default
// SearchOptions: only fields the caller explicitly sets replace the
// defaults. This is the explicit answer to the footgun where passing a
// default-constructed SearchOptions silently replaced every engine default
// (k back to 10, diameter back to 4, index bounds dropped).
struct SearchOverrides {
  std::optional<int> k;
  std::optional<uint32_t> max_diameter;
  std::optional<int64_t> max_expansions;
  std::optional<bool> strict_merge_rule;
  // Execution-pipeline knobs (core/execution.h): which registered
  // SearchExecutor serves the query ("bnb", "parallel", "naive", or any
  // name added via ExecutorRegistry), its thread count, and the per-query
  // deadline / candidate-budget guard.
  std::optional<std::string> executor;
  std::optional<int> num_threads;
  std::optional<double> deadline_ms;
  std::optional<int64_t> candidate_budget;
  // Non-null replaces the engine default's bound provider.
  const PairwiseBoundProvider* bounds = nullptr;
};

struct BatchSearchOptions {
  // Worker threads the batch is spread over (one query per task); values
  // < 1 are clamped to 1.
  int num_threads = 1;
  // Consult and fill the engine's query-result cache (no-op when the
  // engine was built with cache capacity 0).
  bool use_cache = true;
  // Merged over the engine's default SearchOptions for every query.
  SearchOverrides overrides;
};

// Snapshot of the query-result cache counters.
struct QueryCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t invalidations = 0;
  size_t entries = 0;
};

class CiRankEngine {
 public:
  // Builds the index, runs PageRank, and derives the RWMP model. `graph`
  // must outlive the engine.
  [[nodiscard]] static Result<CiRankEngine> Build(const Graph& graph,
                                    const CiRankOptions& options = {});

  CiRankEngine(CiRankEngine&&) noexcept;
  CiRankEngine& operator=(CiRankEngine&&) noexcept;
  ~CiRankEngine();

  // Top-k search with the engine's default options. Served from the query
  // cache when possible (callers needing SearchStats bypass the cache, as
  // a memoized result has no stats to report).
  [[nodiscard]] Result<std::vector<RankedAnswer>> Search(const Query& query,
                                           SearchStats* stats = nullptr) const;

  // Top-k search with explicit per-call options replacing every engine
  // default (never cached: the caller owns the exact configuration).
  [[nodiscard]] Result<std::vector<RankedAnswer>> Search(const Query& query,
                                           const SearchOptions& options,
                                           SearchStats* stats = nullptr) const;

  // Top-k search with per-call overrides merged over the engine defaults.
  [[nodiscard]] Result<std::vector<RankedAnswer>> Search(const Query& query,
                                           const SearchOverrides& overrides,
                                           SearchStats* stats = nullptr) const;

  // The explicit merge rule used by the override-based entry points,
  // exposed for callers that want to inspect the effective configuration.
  [[nodiscard]] SearchOptions EffectiveOptions(
      const SearchOverrides& overrides) const;

  // Serves a batch of queries across `options.num_threads` pool workers,
  // consulting the query cache per query. Entry i of the returned vector
  // is query i's result; per-query failures (e.g. an empty query) do not
  // affect the other entries. When `stats` is non-null it is resized to
  // queries.size() and entry i receives query i's SearchStats; entries
  // served from the cache carry `from_cache = true` (a memoized result has
  // no fresh counters) instead of silently zeroed numbers.
  [[nodiscard]] std::vector<Result<std::vector<RankedAnswer>>> SearchBatch(
      const std::vector<Query>& queries,
      const BatchSearchOptions& options = {},
      std::vector<SearchStats>* stats = nullptr) const;

  // --- User feedback (Sec. VI-A) -------------------------------------
  // Records a clicked/selected answer into the engine's feedback model and
  // invalidates the query-result cache. Thread-safe; concurrent with
  // searches.
  [[nodiscard]] Status RecordFeedback(const std::vector<NodeId>& matched_nodes,
                        const std::vector<NodeId>& connector_nodes,
                        double weight = 1.0);
  [[nodiscard]] Status RecordClick(NodeId v, double weight = 1.0);

  // Recomputes PageRank with the feedback-personalized teleport vector and
  // swaps the RWMP model in place (the scorer keeps pointing at it).
  // Requires exclusive access: fails with FailedPrecondition when searches
  // are visibly in flight. Clears the query cache.
  [[nodiscard]] Status RebuildFromFeedback(const FeedbackOptions& options = {});

  // Accumulated click mass of `v` (thread-safe snapshot).
  double FeedbackClicks(NodeId v) const;

  QueryCacheStats cache_stats() const;

  // Scores one externally assembled answer tree (e.g. for re-ranking or the
  // example programs).
  TreeScore ScoreTree(const Jtt& tree, const Query& query) const {
    return scorer_->Score(tree, query);
  }

  const Graph& graph() const { return *graph_; }
  const InvertedIndex& index() const { return *index_; }
  const RwmpModel& model() const { return *model_; }
  const TreeScorer& scorer() const { return *scorer_; }
  const CiRankOptions& options() const { return options_; }

 private:
  struct Serving;  // cache + feedback state (definition in engine.cc)

  CiRankEngine();

  // Cache-aware search over fully resolved options; `use_cache` further
  // gates the lookup (the cache may also be disabled engine-wide, and
  // deadline- or budget-limited queries are never cached — a truncated
  // result is time-dependent). With `stats_from_cache_ok` a cache hit
  // fills `stats` with just the from_cache marker; otherwise a
  // stats-requesting call is served fresh so its counters are real.
  Result<std::vector<RankedAnswer>> CachedSearch(
      const Query& query, const SearchOptions& options, bool use_cache,
      SearchStats* stats, bool stats_from_cache_ok = false) const;

  const Graph* graph_ = nullptr;
  CiRankOptions options_;
  // unique_ptr members keep internal cross-pointers stable under moves.
  std::unique_ptr<InvertedIndex> index_;
  std::unique_ptr<RwmpModel> model_;
  std::unique_ptr<TreeScorer> scorer_;
  std::unique_ptr<Serving> serving_;
};

}  // namespace cirank

#endif  // CIRANK_CORE_ENGINE_H_
