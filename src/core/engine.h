// CiRankEngine: the public entry point of the library. Owns the derived
// state for one data graph (inverted index, PageRank importance, RWMP
// model) and serves top-k keyword queries.
//
// Typical use:
//   Graph graph = ...;                       // build via GraphBuilder
//   auto engine = CiRankEngine::Build(graph);
//   auto answers = engine->Search(Query::Parse("papakonstantinou ullman"));
#ifndef CIRANK_CORE_ENGINE_H_
#define CIRANK_CORE_ENGINE_H_

#include <memory>
#include <vector>

#include "core/bnb_search.h"
#include "core/naive_search.h"
#include "core/rwmp.h"
#include "core/scorer.h"
#include "graph/graph.h"
#include "rw/pagerank.h"
#include "text/inverted_index.h"

namespace cirank {

struct CiRankOptions {
  RwmpParams rwmp;          // alpha and g (Eq. 2)
  PageRankOptions pagerank;  // teleport constant etc. (Eq. 1)
  SearchOptions search;      // defaults for Search() calls
};

class CiRankEngine {
 public:
  // Builds the index, runs PageRank, and derives the RWMP model. `graph`
  // must outlive the engine.
  [[nodiscard]] static Result<CiRankEngine> Build(const Graph& graph,
                                    const CiRankOptions& options = {});

  CiRankEngine(CiRankEngine&&) = default;
  CiRankEngine& operator=(CiRankEngine&&) = default;

  // Top-k search with the engine's default options.
  [[nodiscard]] Result<std::vector<RankedAnswer>> Search(const Query& query,
                                           SearchStats* stats = nullptr) const;

  // Top-k search with explicit per-call options.
  [[nodiscard]] Result<std::vector<RankedAnswer>> Search(const Query& query,
                                           const SearchOptions& options,
                                           SearchStats* stats = nullptr) const;

  // Scores one externally assembled answer tree (e.g. for re-ranking or the
  // example programs).
  TreeScore ScoreTree(const Jtt& tree, const Query& query) const {
    return scorer_->Score(tree, query);
  }

  const Graph& graph() const { return *graph_; }
  const InvertedIndex& index() const { return *index_; }
  const RwmpModel& model() const { return *model_; }
  const TreeScorer& scorer() const { return *scorer_; }
  const CiRankOptions& options() const { return options_; }

 private:
  CiRankEngine() = default;

  const Graph* graph_ = nullptr;
  CiRankOptions options_;
  // unique_ptr members keep internal cross-pointers stable under moves.
  std::unique_ptr<InvertedIndex> index_;
  std::unique_ptr<RwmpModel> model_;
  std::unique_ptr<TreeScorer> scorer_;
};

}  // namespace cirank

#endif  // CIRANK_CORE_ENGINE_H_
