// CiRankEngine: the public entry point of the library. Owns the derived
// state for one data graph (inverted index, PageRank importance, RWMP
// model) and serves top-k keyword queries — single, batched across a
// thread pool, and memoized through a sharded LRU result cache that user
// feedback invalidates.
//
// Typical use:
//   Graph graph = ...;                       // build via GraphBuilder
//   auto engine = CiRankEngine::Build(graph);
//   auto answers = engine->Search(Query::MustParse("papakonstantinou ullman"));
//   auto batch = engine->SearchBatch(queries, {.num_threads = 8});
//
// Thread-safety: after Build, Search / SearchBatch / RecordFeedback /
// RecordClick may be called concurrently from any number of threads.
// RebuildFromFeedback mutates the model in place and requires the caller to
// quiesce search traffic first (it fails rather than race when it can see
// searches in flight).
#ifndef CIRANK_CORE_ENGINE_H_
#define CIRANK_CORE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/bnb_search.h"
#include "core/feedback.h"
#include "core/naive_search.h"
#include "core/options.h"
#include "core/rwmp.h"
#include "core/scorer.h"
#include "graph/graph.h"
#include "obs/metrics.h"
#include "obs/request_context.h"
#include "obs/trace.h"
#include "rw/pagerank.h"
#include "text/inverted_index.h"

namespace cirank {

// SearchOptions, SearchOverrides (with its fluent WithK()/WithExecutor()/
// WithDeadlineMs() builder), QueryCacheOptions, and BatchSearchOptions all
// live in core/options.h and are re-exported through this include.

struct CiRankOptions {
  RwmpParams rwmp;          // alpha and g (Eq. 2)
  PageRankOptions pagerank;  // teleport constant etc. (Eq. 1)
  SearchOptions search;      // defaults for Search() calls
  QueryCacheOptions cache;   // query-result cache sizing

  // --- Observability (DESIGN.md §11) --------------------------------------
  // Metrics sink for the serving-path instrumentation (queries, cache
  // hits/misses, truncations, stage latencies, build times). nullptr
  // selects the process-wide obs::MetricsRegistry::Default(); set
  // `metrics_enabled = false` to turn recording off entirely — the
  // differential test proves that changes no search result byte-for-byte.
  obs::MetricsRegistry* metrics = nullptr;
  bool metrics_enabled = true;
  // Optional trace-span sink: when non-null every query records a parent
  // span plus one span per Prepare/Expand/Emit stage, exportable as Chrome
  // trace_event JSON (obs/trace.h). Null (the default) disables tracing.
  obs::TraceCollector* trace = nullptr;
};

// Snapshot of the query-result cache counters.
struct QueryCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t invalidations = 0;
  size_t entries = 0;
};

class CiRankEngine {
 public:
  class Builder;  // fluent construction surface; definition below

  // Builds the index, runs PageRank, and derives the RWMP model. `graph`
  // must outlive the engine.
  //
  // DEPRECATED construction path (DESIGN.md §16): new call sites should use
  // CiRankEngine::Builder (graph + knobs in one fluent chain) or, for the
  // full dataset/star-index/sharding surface, shard::EngineBuilder — the
  // `engine-construction` analyzer rule flags direct Build() calls in
  // bench/ and examples/. Kept public because Builder::Build() and the
  // existing unit tests route through it.
  [[nodiscard]] static Result<CiRankEngine> Build(const Graph& graph,
                                    const CiRankOptions& options = {});

  CiRankEngine(CiRankEngine&&) noexcept;
  CiRankEngine& operator=(CiRankEngine&&) noexcept;
  ~CiRankEngine();

  // Top-k search with the engine's default options. Served from the query
  // cache when possible (callers needing SearchStats bypass the cache, as
  // a memoized result has no stats to report).
  [[nodiscard]] Result<std::vector<RankedAnswer>> Search(const Query& query,
                                           SearchStats* stats = nullptr) const;

  // Top-k search with explicit per-call options replacing every engine
  // default (never cached: the caller owns the exact configuration).
  // `trace_id` optionally stamps the query's spans with a request
  // correlation id (DESIGN.md §14) — the sharded serving layer threads the
  // request id into each per-shard sub-search through it. Never affects
  // ranking.
  [[nodiscard]] Result<std::vector<RankedAnswer>> Search(const Query& query,
                                           const SearchOptions& options,
                                           SearchStats* stats = nullptr,
                                           uint64_t trace_id = 0) const;

  // Top-k search with per-call overrides merged over the engine defaults.
  [[nodiscard]] Result<std::vector<RankedAnswer>> Search(const Query& query,
                                           const SearchOverrides& overrides,
                                           SearchStats* stats = nullptr) const;

  // The serving-path entry point (cirankd, src/serve). Like the overrides
  // Search, but a stats-requesting call may still be served from the query
  // cache: a hit fills `stats` with just the from_cache marker and the
  // executor name (every counter zero — no search ran), which is exactly
  // what the HTTP response envelope reports to clients. Also refreshes the
  // cache gauges so a /metrics scrape between queries sees current entry
  // counts. Deadline- or budget-limited queries still bypass the cache.
  // `request` (optional) carries the request-scoped trace id (DESIGN.md
  // §14); when non-null it is threaded into the ExecutionContext so every
  // span the query records joins against the serving layer's logs and
  // /debug/requestz. It never affects ranking — results are byte-identical
  // with or without it.
  [[nodiscard]] Result<std::vector<RankedAnswer>> ServingSearch(
      const Query& query, const SearchOverrides& overrides,
      SearchStats* stats, const obs::RequestContext* request = nullptr) const;

  // The engine's view of MergeOverrides (core/options.h): the overrides
  // applied over this engine's default SearchOptions. Exposed for callers
  // that want to inspect the effective configuration.
  [[nodiscard]] SearchOptions EffectiveOptions(
      const SearchOverrides& overrides) const;

  // Serves a batch of queries across `options.num_threads` pool workers,
  // consulting the query cache per query. Entry i of the returned vector
  // is query i's result; per-query failures (e.g. an empty query) do not
  // affect the other entries. When `stats` is non-null it is resized to
  // queries.size() and entry i receives query i's SearchStats; entries
  // served from the cache carry `from_cache = true` (a memoized result has
  // no fresh counters) instead of silently zeroed numbers.
  [[nodiscard]] std::vector<Result<std::vector<RankedAnswer>>> SearchBatch(
      const std::vector<Query>& queries,
      const BatchSearchOptions& options = {},
      std::vector<SearchStats>* stats = nullptr) const;

  // --- User feedback (Sec. VI-A) -------------------------------------
  // Records a clicked/selected answer into the engine's feedback model and
  // invalidates the query-result cache. Thread-safe; concurrent with
  // searches.
  [[nodiscard]] Status RecordFeedback(const std::vector<NodeId>& matched_nodes,
                        const std::vector<NodeId>& connector_nodes,
                        double weight = 1.0);
  [[nodiscard]] Status RecordClick(NodeId v, double weight = 1.0);

  // Recomputes PageRank with the feedback-personalized teleport vector and
  // swaps the RWMP model in place (the scorer keeps pointing at it).
  // Requires exclusive access: fails with FailedPrecondition when searches
  // are visibly in flight. Clears the query cache.
  [[nodiscard]] Status RebuildFromFeedback(const FeedbackOptions& options = {});

  // Accumulated click mass of `v` (thread-safe snapshot).
  double FeedbackClicks(NodeId v) const;

  QueryCacheStats cache_stats() const;

  // Scores one externally assembled answer tree (e.g. for re-ranking or the
  // example programs).
  TreeScore ScoreTree(const Jtt& tree, const Query& query) const {
    return scorer_->Score(tree, query);
  }

  const Graph& graph() const { return *graph_; }
  const InvertedIndex& index() const { return *index_; }
  const RwmpModel& model() const { return *model_; }
  const TreeScorer& scorer() const { return *scorer_; }
  const CiRankOptions& options() const { return options_; }
  // The resolved metrics sink this engine records into; nullptr when the
  // engine was built with metrics_enabled = false.
  obs::MetricsRegistry* metrics() const { return metrics_; }

 private:
  struct Serving;  // cache + feedback state (definition in engine.cc)

  CiRankEngine();

  // Cache-aware search over fully resolved options; `use_cache` further
  // gates the lookup (the cache may also be disabled engine-wide, and
  // deadline- or budget-limited queries are never cached — a truncated
  // result is time-dependent). With `stats_from_cache_ok` a cache hit
  // fills `stats` with just the from_cache marker; otherwise a
  // stats-requesting call is served fresh so its counters are real.
  Result<std::vector<RankedAnswer>> CachedSearch(
      const Query& query, const SearchOptions& options, bool use_cache,
      SearchStats* stats, bool stats_from_cache_ok = false,
      uint64_t trace_id = 0) const;

  // The single fresh-execution path: dispatches through the executor
  // registry, wires the engine's metrics/trace sinks into the pipeline, and
  // folds latency/error/truncation counters. Does NOT count
  // cirank_engine_queries_total — the public entry points own that.
  Result<std::vector<RankedAnswer>> ExecuteUncached(
      const Query& query, const SearchOptions& options, SearchStats* stats,
      uint64_t trace_id = 0) const;

  const Graph* graph_ = nullptr;
  CiRankOptions options_;
  obs::MetricsRegistry* metrics_ = nullptr;  // resolved; null = disabled
  // unique_ptr members keep internal cross-pointers stable under moves.
  std::unique_ptr<InvertedIndex> index_;
  std::unique_ptr<RwmpModel> model_;
  std::unique_ptr<TreeScorer> scorer_;
  std::unique_ptr<Serving> serving_;
};

// The one sanctioned way to construct an engine (PR 10's half of the
// construction-API redesign; shard::EngineBuilder layers datasets, the star
// index, and sharding on top). Mirrors the SearchOverrides fluent-builder
// style from core/options.h: every setter returns *this, unset knobs keep
// the CiRankOptions defaults, and Build() funnels into the same validated
// factory as before, so the two paths cannot drift.
//
//   auto engine = CiRankEngine::Builder(graph)
//                     .WithSearchDefaults(defaults)
//                     .WithCache({.capacity = 512})
//                     .Build();
class CiRankEngine::Builder {
 public:
  // `graph` must outlive the built engine.
  explicit Builder(const Graph& graph) : graph_(&graph) {}

  // Wholesale replacement of every knob (for callers that already hold a
  // CiRankOptions); the field setters below refine it.
  Builder& WithOptions(const CiRankOptions& options) {
    options_ = options;
    return *this;
  }
  Builder& WithRwmp(const RwmpParams& rwmp) {
    options_.rwmp = rwmp;
    return *this;
  }
  Builder& WithPageRank(const PageRankOptions& pagerank) {
    options_.pagerank = pagerank;
    return *this;
  }
  // Default SearchOptions for every Search() call on the built engine.
  Builder& WithSearchDefaults(const SearchOptions& search) {
    options_.search = search;
    return *this;
  }
  Builder& WithCache(const QueryCacheOptions& cache) {
    options_.cache = cache;
    return *this;
  }
  // Pairwise bound provider wired into the default SearchOptions (the star
  // index); the provider must outlive the engine.
  Builder& WithBounds(const PairwiseBoundProvider* bounds) {
    options_.search.bounds = bounds;
    return *this;
  }
  Builder& WithMetrics(obs::MetricsRegistry* metrics) {
    options_.metrics = metrics;
    return *this;
  }
  Builder& WithMetricsEnabled(bool enabled) {
    options_.metrics_enabled = enabled;
    return *this;
  }
  Builder& WithTrace(obs::TraceCollector* trace) {
    options_.trace = trace;
    return *this;
  }

  const CiRankOptions& options() const { return options_; }

  [[nodiscard]] Result<CiRankEngine> Build() const {
    return CiRankEngine::Build(*graph_, options_);
  }

 private:
  const Graph* graph_;
  CiRankOptions options_;
};

}  // namespace cirank

#endif  // CIRANK_CORE_ENGINE_H_
