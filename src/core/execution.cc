#include "core/execution.h"

#include <algorithm>
#include <map>
#include <utility>

#include "core/bnb_search.h"
#include "core/naive_search.h"
#include "core/order_by.h"
#include "core/parallel_search.h"
#include "util/annotations.h"
#include "util/check.h"
#include "util/mutex.h"
#include "util/timer.h"

namespace cirank {

// ---------------------------------------------------------------------------
// ExecutionContext

ExecutionContext::ExecutionContext(const ExecutionLimits& limits)
    : limits_(limits) {
  if (limits_.deadline_ms > 0.0) {
    has_deadline_ = true;
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(
                        limits_.deadline_ms));
  }
}

bool ExecutionContext::ChargeCandidates(int64_t n) {
  const int64_t total = charged_.fetch_add(n, std::memory_order_relaxed) + n;
  if (limits_.candidate_budget > 0 && total > limits_.candidate_budget) {
    StopReason expected = StopReason::kNone;
    stop_reason_.compare_exchange_strong(expected,
                                         StopReason::kCandidateBudget,
                                         std::memory_order_acq_rel);
    return false;
  }
  return !stopped();
}

bool ExecutionContext::ShouldStop() {
  if (stopped()) return true;
  if (!has_deadline_) return false;
  // Probe the clock only every kDeadlineCheckStride calls: hot loops call
  // this per candidate and a steady_clock read per call would dominate tiny
  // queries. The first call always probes, so short deadlines are seen.
  const int64_t probe = stop_probe_.fetch_add(1, std::memory_order_relaxed);
  if (probe % kDeadlineCheckStride != 0) return false;
  if (std::chrono::steady_clock::now() >= deadline_) {
    StopReason expected = StopReason::kNone;
    stop_reason_.compare_exchange_strong(expected, StopReason::kDeadline,
                                         std::memory_order_acq_rel);
    return true;
  }
  return false;
}

Status ExecutionContext::stop_status() const {
  switch (stop_reason()) {
    case StopReason::kNone:
      return Status::OK();
    case StopReason::kDeadline:
      return Status::DeadlineExceeded(
          "query deadline of " + std::to_string(limits_.deadline_ms) +
          " ms expired; returning best-so-far partial top-k");
    case StopReason::kCandidateBudget:
      return Status::DeadlineExceeded(
          "candidate budget of " + std::to_string(limits_.candidate_budget) +
          " exhausted; returning best-so-far partial top-k");
  }
  return Status::Internal("unreachable stop reason");
}

// ---------------------------------------------------------------------------
// ExecutorRegistry

struct ExecutorRegistry::Impl {
  mutable Mutex mu;
  std::map<std::string, ExecutorFactory> factories CIRANK_GUARDED_BY(mu);
};

ExecutorRegistry::ExecutorRegistry() : impl_(std::make_unique<Impl>()) {}
ExecutorRegistry::~ExecutorRegistry() = default;

ExecutorRegistry& ExecutorRegistry::Global() {
  // The core executors are registered on first use; baselines add theirs
  // via RegisterBaselineExecutors() (explicit, to avoid a core→baselines
  // dependency cycle and static-initialization-order traps).
  static ExecutorRegistry* registry = [] {
    auto* r = new ExecutorRegistry();
    CIRANK_CHECK_OK(r->Register("bnb", MakeBnbExecutor));
    CIRANK_CHECK_OK(r->Register("parallel", MakeParallelBnbExecutor));
    CIRANK_CHECK_OK(r->Register("naive", MakeNaiveExecutor));
    return r;
  }();
  return *registry;
}

Status ExecutorRegistry::Register(std::string name, ExecutorFactory factory) {
  if (name.empty()) return Status::InvalidArgument("executor name is empty");
  if (factory == nullptr) {
    return Status::InvalidArgument("executor factory is null");
  }
  MutexLock lk(impl_->mu);
  if (!impl_->factories.emplace(std::move(name), std::move(factory)).second) {
    return Status::InvalidArgument("executor already registered");
  }
  return Status::OK();
}

Result<std::unique_ptr<SearchExecutor>> ExecutorRegistry::Create(
    const std::string& name, const ExecutorEnv& env) const {
  ExecutorFactory factory;
  {
    MutexLock lk(impl_->mu);
    auto it = impl_->factories.find(name);
    if (it == impl_->factories.end()) {
      std::string known;
      for (const auto& [n, f] : impl_->factories) {
        (void)f;
        if (!known.empty()) known += ", ";
        known += n;
      }
      return Status::NotFound("unknown executor '" + name +
                              "' (registered: " + known + ")");
    }
    factory = it->second;
  }
  return factory(env);
}

bool ExecutorRegistry::Contains(const std::string& name) const {
  MutexLock lk(impl_->mu);
  return impl_->factories.count(name) != 0;
}

std::vector<std::string> ExecutorRegistry::Names() const {
  MutexLock lk(impl_->mu);
  std::vector<std::string> names;
  names.reserve(impl_->factories.size());
  for (const auto& [n, f] : impl_->factories) {
    (void)f;
    names.push_back(n);
  }
  return names;
}

// ---------------------------------------------------------------------------
// Pipeline driver

namespace {

// Folds one finished pipeline run into the bound registry. Instrument
// lookup is by name (a short mutex-protected map probe, once per query);
// the increments themselves are relaxed atomics.
void RecordPipelineMetrics(obs::MetricsRegistry* m, const SearchStats& st,
                           const StageStats& sg) {
  if (m == nullptr) return;
  static constexpr char kStageHelp[] =
      "Wall time per execution-pipeline stage, seconds";
  m->GetHistogram("cirank_stage_seconds{stage=\"prepare\"}", kStageHelp)
      .Observe(sg.prepare_seconds);
  m->GetHistogram("cirank_stage_seconds{stage=\"expand\"}", kStageHelp)
      .Observe(sg.expand_seconds);
  m->GetHistogram("cirank_stage_seconds{stage=\"emit\"}", kStageHelp)
      .Observe(sg.emit_seconds);
  m->GetCounter("cirank_candidates_generated_total",
                "Candidates admitted by grow/merge/seed across queries")
      .Increment(sg.candidates_generated);
  m->GetCounter("cirank_candidates_pruned_total",
                "Candidates rejected by viability/diameter/bound checks")
      .Increment(sg.candidates_pruned);
  m->GetCounter("cirank_bound_calls_total",
                "UpperBoundCalculator::UpperBound invocations")
      .Increment(sg.bound_calls);
  m->GetCounter("cirank_executor_queries_total{executor=\"" + st.executor +
                    "\"}",
                "Queries served, by executor")
      .Increment();
  if (st.truncated) {
    m->GetCounter("cirank_executor_truncated_total",
                  "Queries cut short by the deadline/candidate-budget guard")
        .Increment();
  }
}

}  // namespace

Result<std::vector<RankedAnswer>> RunSearchPipeline(SearchExecutor& executor,
                                                    ExecutionContext& ctx,
                                                    SearchStats* stats) {
  SearchStats local;
  SearchStats& st = stats != nullptr ? *stats : local;
  st = SearchStats{};
  st.executor = std::string(executor.name());

  obs::TraceSpan query_span;
  if (ctx.trace() != nullptr) {
    query_span = obs::TraceSpan(ctx.trace(), "query:" + st.executor, "query",
                                ctx.trace_track(), ctx.trace_id());
  }
  auto stage_span = [&ctx](const char* name) {
    return ctx.trace() != nullptr
               ? obs::TraceSpan(ctx.trace(), name, "stage", ctx.trace_track(),
                                ctx.trace_id())
               : obs::TraceSpan();
  };

  Timer timer;
  {
    obs::TraceSpan span = stage_span("prepare");
    CIRANK_RETURN_IF_ERROR(executor.Prepare(ctx));
  }
  ctx.stages().prepare_seconds = timer.ElapsedSeconds();

  timer.Reset();
  Status expand_status;
  {
    obs::TraceSpan span = stage_span("expand");
    expand_status = executor.Expand(ctx);
  }
  ctx.stages().expand_seconds = timer.ElapsedSeconds();
  // A deadline/budget stop is a truncation, not a failure: Emit still runs
  // and the partial top-k is returned. Any other error is fatal.
  if (!expand_status.ok() && !expand_status.IsDeadlineExceeded()) {
    return expand_status;
  }

  timer.Reset();
  Result<std::vector<RankedAnswer>> emitted = [&] {
    obs::TraceSpan span = stage_span("emit");
    return executor.Emit(ctx);
  }();
  CIRANK_ASSIGN_OR_RETURN(std::vector<RankedAnswer> answers,
                          std::move(emitted));
  ctx.stages().emit_seconds = timer.ElapsedSeconds();

  executor.FillStats(&st);
  ctx.stages().arena_bytes = ctx.arena().bytes_used();
  st.executor = std::string(executor.name());
  st.truncated = ctx.stopped();
  if (st.truncated) st.proven_optimal = false;
  st.stages = ctx.stages();
  RecordPipelineMetrics(ctx.metrics(), st, ctx.stages());
  return answers;
}

Result<std::vector<RankedAnswer>> ExecuteSearch(const ExecutorEnv& env,
                                                SearchStats* stats) {
  // Parse order_by up front so a bad spec fails the query before any search
  // work runs (and before the serving layer caches anything).
  CIRANK_ASSIGN_OR_RETURN(std::vector<OrderKey> order_keys,
                          ParseOrderBy(env.options.order_by));
  CIRANK_ASSIGN_OR_RETURN(
      std::unique_ptr<SearchExecutor> executor,
      ExecutorRegistry::Global().Create(env.options.executor, env));
  ExecutionContext ctx(ExecutionLimits::FromOptions(env.options));
  ctx.BindObservability(env.metrics, env.trace, env.trace_id);
  CIRANK_ASSIGN_OR_RETURN(std::vector<RankedAnswer> answers,
                          RunSearchPipeline(*executor, ctx, stats));
  if (stats != nullptr && stats->ranker.empty()) {
    stats->ranker = env.options.ranker;
  }
  // Presentation pass: selection already happened under the ranker's score;
  // order_by only rearranges the k selected answers. Empty spec = answers
  // pass through byte-identical.
  if (!order_keys.empty() && env.scorer != nullptr) {
    ApplyOrderBy(order_keys, env.scorer->model().graph(), &answers);
  }
  return answers;
}

}  // namespace cirank
