#include "core/jtt.h"

#include <algorithm>
#include <charconv>
#include <sstream>

#include "util/check.h"

namespace cirank {

Result<Jtt> Jtt::Create(NodeId root,
                        std::vector<std::pair<NodeId, NodeId>> edges) {
  Jtt tree;
  tree.root_ = root;
  tree.nodes_.reserve(edges.size() + 1);
  tree.nodes_.push_back(root);
  for (const auto& [parent, child] : edges) {
    tree.nodes_.push_back(parent);
    tree.nodes_.push_back(child);
  }
  std::sort(tree.nodes_.begin(), tree.nodes_.end());
  tree.nodes_.erase(std::unique(tree.nodes_.begin(), tree.nodes_.end()),
                    tree.nodes_.end());
  if (tree.nodes_.size() != edges.size() + 1) {
    return Status::InvalidArgument(
        "edge list does not form a tree (wrong node count)");
  }
  tree.edges_ = std::move(edges);

  tree.adjacency_.assign(tree.nodes_.size(), {});
  for (const auto& [parent, child] : tree.edges_) {
    const size_t pi = tree.IndexOf(parent);
    const size_t ci = tree.IndexOf(child);
    tree.adjacency_[pi].push_back(static_cast<uint32_t>(ci));
    tree.adjacency_[ci].push_back(static_cast<uint32_t>(pi));
  }

  // Connectivity check: a BFS over the undirected adjacency must reach all
  // nodes; together with |edges| == |nodes| - 1 this certifies a tree.
  std::vector<uint32_t> dist;
  tree.DistancesFrom(tree.IndexOf(root), &dist);
  for (uint32_t d : dist) {
    if (d == static_cast<uint32_t>(-1)) {
      return Status::InvalidArgument(
          "edge list does not form a tree rooted at the given root");
    }
  }
#if CIRANK_DCHECK_IS_ON()
  {
    Status audit = ValidateJtt(tree);
    CIRANK_DCHECK(audit.ok())
        << "Jtt::Create produced an invalid tree: " << audit.ToString();
  }
#endif
  return tree;
}

Status ValidateJtt(const Jtt& tree) {
  if (tree.root_ == kInvalidNode) {
    return Status::FailedPrecondition("default-constructed (empty) JTT");
  }
  const std::vector<NodeId>& nodes = tree.nodes_;
  if (nodes.empty()) {
    return Status::Internal("JTT has a root but no node list");
  }
  for (size_t i = 1; i < nodes.size(); ++i) {
    if (nodes[i - 1] >= nodes[i]) {
      return Status::Internal("JTT node list not sorted/unique");
    }
  }
  const size_t root_index = tree.IndexOf(tree.root_);
  if (root_index == nodes.size()) {
    return Status::Internal("JTT root is not among its nodes");
  }
  if (tree.edges_.size() + 1 != nodes.size()) {
    return Status::Internal("JTT edge count is not |nodes| - 1");
  }
  if (tree.adjacency_.size() != nodes.size()) {
    return Status::Internal("JTT adjacency not parallel to node list");
  }

  // The adjacency must mirror the edge list exactly: count undirected edge
  // stubs per node, then compare.
  std::vector<uint32_t> expected_degree(nodes.size(), 0);
  for (const auto& [parent, child] : tree.edges_) {
    const size_t pi = tree.IndexOf(parent);
    const size_t ci = tree.IndexOf(child);
    if (pi == nodes.size() || ci == nodes.size()) {
      return Status::Internal("JTT edge references a node outside the tree");
    }
    if (pi == ci) return Status::Internal("JTT edge is a self-loop");
    ++expected_degree[pi];
    ++expected_degree[ci];
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (tree.adjacency_[i].size() != expected_degree[i]) {
      return Status::Internal("JTT adjacency disagrees with the edge list");
    }
    for (uint32_t nb : tree.adjacency_[i]) {
      if (nb >= nodes.size()) {
        return Status::Internal("JTT adjacency index out of range");
      }
    }
  }

  // Root reachability: BFS over the adjacency must reach every node. With
  // |edges| == |nodes| - 1 this also certifies acyclicity.
  std::vector<uint32_t> dist;
  tree.DistancesFrom(root_index, &dist);
  for (uint32_t d : dist) {
    if (d == static_cast<uint32_t>(-1)) {
      return Status::Internal(
          "JTT is disconnected (node unreachable from the root)");
    }
  }
  return Status::OK();
}

Status ValidateJtt(const Jtt& tree, const Query& query,
                   const InvertedIndex& index) {
  CIRANK_RETURN_IF_ERROR(ValidateJtt(tree));
  if (!tree.CoversAllKeywords(query, index)) {
    return Status::FailedPrecondition(
        "JTT does not cover every query keyword");
  }
  if (!tree.IsReduced(query, index)) {
    return Status::FailedPrecondition(
        "JTT non-free-node cover violated (Definition 3): some degree-<=1 "
        "node cannot be matched to a distinct keyword");
  }
  return Status::OK();
}

bool Jtt::contains(NodeId v) const {
  return std::binary_search(nodes_.begin(), nodes_.end(), v);
}

size_t Jtt::IndexOf(NodeId v) const {
  auto it = std::lower_bound(nodes_.begin(), nodes_.end(), v);
  if (it == nodes_.end() || *it != v) return nodes_.size();
  return static_cast<size_t>(it - nodes_.begin());
}

std::vector<NodeId> Jtt::TreeNeighbors(NodeId v) const {
  std::vector<NodeId> out;
  const size_t i = IndexOf(v);
  if (i == nodes_.size()) return out;
  out.reserve(adjacency_[i].size());
  for (uint32_t nb : adjacency_[i]) out.push_back(nodes_[nb]);
  return out;
}

size_t Jtt::DegreeOf(NodeId v) const {
  const size_t i = IndexOf(v);
  return i == nodes_.size() ? 0 : adjacency_[i].size();
}

void Jtt::DistancesFrom(size_t start_index,
                        std::vector<uint32_t>* dist) const {
  dist->assign(nodes_.size(), static_cast<uint32_t>(-1));
  (*dist)[start_index] = 0;
  // Simple array-based frontier; trees are tiny.
  std::vector<uint32_t> frontier{static_cast<uint32_t>(start_index)};
  std::vector<uint32_t> next;
  uint32_t level = 0;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (uint32_t u : frontier) {
      for (uint32_t nb : adjacency_[u]) {
        if ((*dist)[nb] == static_cast<uint32_t>(-1)) {
          (*dist)[nb] = level;
          next.push_back(nb);
        }
      }
    }
    frontier.swap(next);
  }
}

uint32_t Jtt::Diameter() const {
  if (nodes_.size() <= 1) return 0;
  // Standard double-BFS on trees: farthest node from any start, then
  // farthest from there.
  std::vector<uint32_t> dist;
  DistancesFrom(0, &dist);
  size_t far = 0;
  for (size_t i = 1; i < dist.size(); ++i) {
    if (dist[i] > dist[far]) far = i;
  }
  DistancesFrom(far, &dist);
  uint32_t best = 0;
  for (uint32_t d : dist) best = std::max(best, d);
  return best;
}

uint32_t Jtt::EccentricityOf(NodeId v) const {
  const size_t i = IndexOf(v);
  if (i == nodes_.size()) return 0;
  std::vector<uint32_t> dist;
  DistancesFrom(i, &dist);
  uint32_t best = 0;
  for (uint32_t d : dist) best = std::max(best, d);
  return best;
}

std::vector<NodeId> Jtt::PathBetween(NodeId a, NodeId b) const {
  std::vector<NodeId> path;
  const size_t ai = IndexOf(a);
  const size_t bi = IndexOf(b);
  if (ai == nodes_.size() || bi == nodes_.size()) return path;

  // BFS from a recording predecessors.
  std::vector<uint32_t> pred(nodes_.size(), static_cast<uint32_t>(-1));
  pred[ai] = static_cast<uint32_t>(ai);
  std::vector<uint32_t> frontier{static_cast<uint32_t>(ai)};
  std::vector<uint32_t> next;
  while (!frontier.empty() && pred[bi] == static_cast<uint32_t>(-1)) {
    next.clear();
    for (uint32_t u : frontier) {
      for (uint32_t nb : adjacency_[u]) {
        if (pred[nb] == static_cast<uint32_t>(-1)) {
          pred[nb] = u;
          next.push_back(nb);
        }
      }
    }
    frontier.swap(next);
  }
  if (pred[bi] == static_cast<uint32_t>(-1)) return path;
  for (uint32_t v = static_cast<uint32_t>(bi);; v = pred[v]) {
    path.push_back(nodes_[v]);
    if (v == ai) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

bool Jtt::EdgesExistIn(const Graph& graph) const {
  for (const auto& [parent, child] : edges_) {
    if (!graph.has_edge(parent, child) || !graph.has_edge(child, parent)) {
      return false;
    }
  }
  return true;
}

namespace {

// Augmenting-path step of bipartite matching: tries to match required node
// `i` to some keyword it contains, displacing earlier matches if needed.
bool TryMatch(size_t i, const std::vector<std::vector<size_t>>& contains,
              std::vector<int>& keyword_owner, std::vector<bool>& visited) {
  for (size_t k : contains[i]) {
    if (visited[k]) continue;
    visited[k] = true;
    if (keyword_owner[k] < 0 ||
        TryMatch(static_cast<size_t>(keyword_owner[k]), contains,
                 keyword_owner, visited)) {
      keyword_owner[k] = static_cast<int>(i);
      return true;
    }
  }
  return false;
}

}  // namespace

bool MatchableToDistinctKeywords(const std::vector<NodeId>& nodes,
                                 const Query& query,
                                 const InvertedIndex& index) {
  if (nodes.size() > query.size()) return false;

  std::vector<std::vector<size_t>> contains(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (size_t k = 0; k < query.keywords.size(); ++k) {
      if (index.TermFrequency(nodes[i], query.keywords[k]) > 0) {
        contains[i].push_back(k);
      }
    }
    if (contains[i].empty()) return false;  // matches nothing
  }

  std::vector<int> keyword_owner(query.size(), -1);
  for (size_t i = 0; i < nodes.size(); ++i) {
    std::vector<bool> visited(query.size(), false);
    if (!TryMatch(i, contains, keyword_owner, visited)) return false;
  }
  return true;
}

bool Jtt::IsReduced(const Query& query, const InvertedIndex& index) const {
  // Definition 3: there must exist a designated node per keyword (the set R)
  // such that every undirected degree-<=1 node -- the rooted-tree leaves,
  // plus the root when it has a single child -- belongs to R. Equivalently,
  // the required nodes must be matchable to *distinct* keywords they
  // contain.
  std::vector<NodeId> required;
  if (nodes_.size() == 1) {
    required.push_back(root_);
  } else {
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (adjacency_[i].size() == 1) required.push_back(nodes_[i]);
    }
  }
  return MatchableToDistinctKeywords(required, query, index);
}

bool Jtt::CoversAllKeywords(const Query& query,
                            const InvertedIndex& index) const {
  for (const std::string& k : query.keywords) {
    bool covered = false;
    for (NodeId v : nodes_) {
      if (index.TermFrequency(v, k) > 0) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

std::string Jtt::CanonicalKey() const {
  std::vector<std::pair<NodeId, NodeId>> undirected;
  undirected.reserve(edges_.size());
  for (const auto& [parent, child] : edges_) {
    undirected.emplace_back(std::min(parent, child),
                            std::max(parent, child));
  }
  std::sort(undirected.begin(), undirected.end());

  std::string out;
  out.reserve(nodes_.size() * 8 + undirected.size() * 16 + 2);
  char buf[16];
  auto append_num = [&](NodeId v) {
    auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    (void)ec;
    out.append(buf, end);
  };
  for (NodeId v : nodes_) {
    append_num(v);
    out.push_back(',');
  }
  out.push_back('|');
  for (const auto& [a, b] : undirected) {
    append_num(a);
    out.push_back('-');
    append_num(b);
    out.push_back(';');
  }
  return out;
}

Jtt Jtt::Canonicalized() const {
  if (root_ == kInvalidNode) return Jtt();
  if (nodes_.size() <= 1) return Jtt(root_);
  const NodeId canon_root = nodes_.front();  // smallest id; nodes_ is sorted
  // BFS from the canonical root, visiting neighbors in ascending node id
  // (adjacency indices point into the sorted node list, so index order is
  // id order). The emitted edge order is therefore a pure function of the
  // undirected node/edge sets.
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(edges_.size());
  std::vector<char> visited(nodes_.size(), 0);
  std::vector<size_t> bfs;
  bfs.reserve(nodes_.size());
  visited[0] = 1;
  bfs.push_back(0);
  for (size_t qi = 0; qi < bfs.size(); ++qi) {
    const size_t u = bfs[qi];
    std::vector<uint32_t> nbs = adjacency_[u];
    std::sort(nbs.begin(), nbs.end());
    for (uint32_t v : nbs) {
      if (visited[v]) continue;
      visited[v] = 1;
      edges.emplace_back(nodes_[u], nodes_[v]);
      bfs.push_back(v);
    }
  }
  Result<Jtt> canon = Jtt::Create(canon_root, std::move(edges));
  CIRANK_CHECK(canon.ok()) << "Canonicalized() of a valid tree failed: "
                           << canon.status().ToString();
  return std::move(canon).value();
}

std::string Jtt::ToString(const Graph& graph) const {
  std::ostringstream out;
  out << "JTT(root=" << graph.text_of(root_);
  for (const auto& [parent, child] : edges_) {
    out << "; " << graph.text_of(parent) << " -- " << graph.text_of(child);
  }
  out << ")";
  return out.str();
}

}  // namespace cirank
