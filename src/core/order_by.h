// Manticore-style multi-key result ordering (DESIGN.md §15): an optional
// `ORDER BY key [asc|desc], ...` presentation pass over the selected top-k.
// Keys are attributes of the answer tree's root tuple (plus the score and
// the tree size); the comparator always appends a final CanonicalKey
// ascending tiebreak, so any key list yields a deterministic *total* order —
// two distinct answers never compare equal, and the sorted output is
// independent of the input permutation (tie-shuffle invariance, pinned by
// the ranker property tests).
//
// Selection still happens under the ranker's score (the executors return
// the score-ranked top-k); order-by only rearranges those k answers. An
// empty key list leaves the answer bytes completely untouched.
#ifndef CIRANK_CORE_ORDER_BY_H_
#define CIRANK_CORE_ORDER_BY_H_

#include <string_view>
#include <vector>

#include "core/jtt.h"
#include "util/status.h"

namespace cirank {

struct RankedAnswer;  // core/execution.h

struct OrderKey {
  enum class Field {
    kScore,        // the ranker's answer score
    kRoot,         // root node id
    kExternalKey,  // root tuple's external key
    kRelation,     // root tuple's relation id
    kSize,         // answer tree size in nodes
    kText,         // root tuple's text, lexicographic
  };
  Field field = Field::kScore;
  bool descending = false;
};

// Parses a comma-separated key list: "score desc, external_key asc". Each
// entry is a field name ("score", "root", "external_key", "relation",
// "size", "text") optionally followed by "asc" (the default) or "desc".
// Whitespace-insensitive; an empty spec parses to an empty key list.
// Unknown fields or directions are InvalidArgument naming the offender.
[[nodiscard]] Result<std::vector<OrderKey>> ParseOrderBy(
    std::string_view spec);

// Reorders `answers` in place under `keys` (with the implicit CanonicalKey
// tiebreak). No-op when `keys` is empty. `graph` supplies the root
// attributes and must be the graph the answers were searched in.
void ApplyOrderBy(const std::vector<OrderKey>& keys, const Graph& graph,
                  std::vector<RankedAnswer>* answers);

}  // namespace cirank

#endif  // CIRANK_CORE_ORDER_BY_H_
