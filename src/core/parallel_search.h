// Parallel branch-and-bound top-k search: Algorithm 1 with the candidate
// frontier shared across a pool of workers. All workers pop from one
// mutex-protected priority queue, expand (grow/merge + bound computation,
// the expensive part) outside the lock, and publish into a shared top-k
// heap; Theorem 1 pruning stays admissible because a candidate is discarded
// only when its upper bound is strictly below the current k-th score — and
// that threshold is monotonically non-decreasing, so a once-prunable entry
// stays prunable forever.
//
// Exactness guarantee: with an unlimited expansion budget the returned
// vector is byte-identical to BranchAndBoundSearch's for every thread
// count. The argument: every answer whose score ties or beats the final
// k-th score has, by Lemma 1, derivation-chain bounds at least that score,
// so no candidate on its chain is ever pruned under the strict rule in any
// interleaving; all such answers are therefore found, scored on their
// canonical tree representation (identical floating point), and ranked by
// the shared (score desc, canonical key asc) order. The differential test
// suite checks this against the serial search on ~50 random graphs at 1, 2,
// and 8 threads.
//
// This is the "parallel" SearchExecutor of the execution pipeline
// (core/execution.h): candidates are arena-placed under the shared-state
// mutex, and the per-query deadline/budget guard truncates all workers.
#ifndef CIRANK_CORE_PARALLEL_SEARCH_H_
#define CIRANK_CORE_PARALLEL_SEARCH_H_

#include <memory>
#include <vector>

#include "core/bnb_search.h"
#include "core/execution.h"
#include "core/scorer.h"

namespace cirank {

struct ParallelSearchOptions {
  // Worker threads expanding the shared frontier; must be >= 1. The workers
  // come from a pool created for the call (raw threads are confined to
  // src/util/thread_pool.*).
  int num_threads = 1;
};

// Factory for the "parallel" executor (registered in
// ExecutorRegistry::Global); thread count comes from
// ExecutorEnv::options.num_threads. Fails on empty queries, queries with
// more than Query::kMaxKeywords keywords, non-positive k, or non-positive
// num_threads.
[[nodiscard]] Result<std::unique_ptr<SearchExecutor>> MakeParallelBnbExecutor(
    const ExecutorEnv& env);

// Parallel Algorithm 1. Identical results to BranchAndBoundSearch (see
// above); `stats` counters are exact totals but `popped`-order-dependent
// fields (budget_exhausted cut points) may differ run to run when
// `options.max_expansions` is nonzero — budgeted runs surrender the
// byte-identical guarantee, exactly as the serial search surrenders
// optimality. Fails on empty queries, queries with more than 31 keywords,
// non-positive k, or non-positive num_threads.
//
// DEPRECATED for application code: prefer CiRankEngine::Search with
// SearchOverrides().WithExecutor("parallel").WithNumThreads(n) — the
// registry path layers caching, metrics, and tracing on the same executor.
// Kept for the differential suite, which compares it against the serial
// search directly.
[[nodiscard]] Result<std::vector<RankedAnswer>> ParallelBnbSearch(
    const TreeScorer& scorer, const Query& query, const SearchOptions& options,
    const ParallelSearchOptions& parallel, SearchStats* stats = nullptr);

}  // namespace cirank

#endif  // CIRANK_CORE_PARALLEL_SEARCH_H_
