// Shared support for the top-k searches (serial and parallel): the top-k
// answer accumulator and the candidate identity key. Kept in one header so
// both search implementations provably apply identical dedup and
// tie-breaking rules — the differential test suite depends on that.
#ifndef CIRANK_CORE_TOPK_H_
#define CIRANK_CORE_TOPK_H_

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/bnb_search.h"
#include "core/candidate.h"
#include "util/check.h"

namespace cirank {

// Identity of a candidate inside the search: the root matters because the
// same underlying tree rooted differently offers different expansions.
inline std::string CandidateKey(const Candidate& c) {
  return std::to_string(c.root()) + "|" + c.tree.CanonicalKey();
}

// Maintains the current top-k answers, deduplicated by canonical tree key
// and ordered by (score descending, canonical key ascending). NOT
// thread-safe: the parallel search serializes Offer calls under its state
// mutex. Offered trees should already be in canonical form (see
// Jtt::Canonicalized) so the stored instances — and hence the bytes of the
// final result — do not depend on which derivation reached a tree first.
class TopKAnswers {
 public:
  explicit TopKAnswers(size_t k) : k_(k) {}

  // Returns true when the answer is new (not a duplicate tree). Once the
  // accumulator is full, the pruning threshold MinScore() is monotonically
  // non-decreasing over any sequence of offers; the DCHECK below is the
  // machine-checked half of that property (the property test drives it
  // under concurrency).
  bool Offer(Jtt tree, double score) {
    std::string key = tree.CanonicalKey();
    if (!seen_.insert(std::move(key)).second) return false;
    const bool was_full = Full();
    const double old_threshold = MinScore();
    answers_.push_back(RankedAnswer{std::move(tree), score});
    std::sort(answers_.begin(), answers_.end(),
              [](const RankedAnswer& a, const RankedAnswer& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.tree.CanonicalKey() < b.tree.CanonicalKey();
              });
    if (answers_.size() > k_) answers_.resize(k_);
    if (was_full) {
      CIRANK_DCHECK(MinScore() >= old_threshold)
          << "top-k pruning threshold decreased from " << old_threshold
          << " to " << MinScore();
    }
    return true;
  }

  bool Full() const { return answers_.size() >= k_; }
  size_t size() const { return answers_.size(); }
  double MinScore() const {
    return answers_.empty() ? 0.0 : answers_.back().score;
  }
  std::vector<RankedAnswer> Take() { return std::move(answers_); }

 private:
  size_t k_;
  std::vector<RankedAnswer> answers_;
  std::set<std::string> seen_;
};

}  // namespace cirank

#endif  // CIRANK_CORE_TOPK_H_
