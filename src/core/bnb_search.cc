#include "core/bnb_search.h"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <string>
#include <utility>

#include "core/ranker.h"
#include "core/shard_hooks.h"
#include "core/topk.h"
#include "util/check.h"

namespace cirank {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// The "bnb" executor: Algorithm 1 decomposed into the pipeline stages.
// Prepare seeds single-node candidates for every non-free node; Expand runs
// the pop/grow/merge loop under the Theorem-1 stopping rule; Emit takes the
// accumulated top-k. Candidates are placed into the per-query arena —
// stable addresses, one wholesale release at query end — and the frontier
// and registries hold indices into `slots_`.
class BnbExecutor final : public SearchExecutor {
 public:
  explicit BnbExecutor(const ExecutorEnv& env)
      : scorer_(*env.scorer),
        query_(*env.query),
        options_(env.options),
        shard_(env.options.shard_hooks),
        answers_(static_cast<size_t>(env.options.k)) {}

  std::string_view name() const override { return "bnb"; }

  Status Prepare(ExecutionContext& ctx) override {
    // The ranker owns all scoring *and* the Theorem-1 bound state; the
    // executor only enumerates. The default "rwmp" ranker delegates to the
    // same TreeScorer / UpperBoundCalculator pair the executor used to own,
    // so the search stays byte-identical.
    CIRANK_ASSIGN_OR_RETURN(
        ranker_, RankerRegistry::Global().Create(
                     options_.ranker, RankerEnv{&scorer_, &query_, options_}));
    all_ = (KeywordMask{1} << query_.size()) - 1;

    // Seed with single-node candidates for every non-free node (line 3-6).
    const InvertedIndex& index = scorer_.index();
    std::set<NodeId> seeds;
    for (const std::string& k : query_.keywords) {
      for (NodeId v : index.MatchingNodes(k)) seeds.insert(v);
    }
    for (NodeId v : seeds) {
      // Sharded sub-search: only seeds inside this shard's scope ball. Every
      // answer tree of diameter ≤ D lies entirely within the scope of the
      // shard owning its minimum node (DESIGN.md §16), so dropping
      // out-of-scope seeds loses nothing globally.
      if (shard_ != nullptr && !shard_->InScope(v)) continue;
      Candidate c;
      c.tree = Jtt(v);
      c.covered = NodeKeywordMask(v, query_, index);
      c.diameter = 0;
      Admit(ctx, std::move(c), kInf, /*from_merge=*/false);
      if (ctx.ShouldStop()) break;
    }
    return Status::OK();
  }

  Status Expand(ExecutionContext& ctx) override {
    const Graph& graph = scorer_.model().graph();
    while (!queue_.empty()) {
      if (ctx.ShouldStop()) return ctx.stop_status();
      auto [ub, idx] = queue_.top();
      queue_.pop();
      if (ub < slots_[idx]->upper_bound) continue;  // stale (cannot happen)

      // Stopping rule (lines 9-11): nothing left can beat — or canonically
      // displace a tie with — the k-th answer. The inequality is strict so
      // candidates tying with the k-th score are still expanded; that makes
      // the output independent of expansion order (see bnb_search.h). A
      // sharded sub-search additionally stops once its best remaining bound
      // falls below the cross-shard global k-th score (DESIGN.md §16): the
      // published threshold never exceeds the final merged k-th answer, so
      // with the same strict inequality the early exit discards only
      // candidates provably outside the global top-k.
      const bool local_stop = answers_.Full() && ub < answers_.MinScore();
      if (local_stop ||
          (shard_ != nullptr && ub < shard_->GlobalThreshold())) {
        max_pruned_bound_ = std::max(max_pruned_bound_, ub);
        ctx.stages().candidates_pruned +=
            static_cast<int64_t>(queue_.size()) + 1;
        proven_optimal_ = true;
        if (!local_stop) shard_early_stopped_ = true;
        break;
      }
      ++popped_;
      if (options_.max_expansions > 0 && popped_ > options_.max_expansions) {
        budget_exhausted_ = true;
        break;
      }

      // Tree growing (line 12): every graph neighbor of the root not yet in
      // the tree becomes a new root.
      const Candidate& c = *slots_[idx];
      const NodeId root = c.root();
      std::vector<NodeId> neighbors;
      for (const Edge& e : graph.out_edges(root)) {
        // Sharded sub-search: never grow a tree across the scope boundary —
        // trees crossing it are enumerated (in full) by the shard that owns
        // them.
        if (shard_ != nullptr && !shard_->InScope(e.to)) continue;
        if (!c.tree.contains(e.to)) neighbors.push_back(e.to);
      }
      for (NodeId nb : neighbors) {
        if (ctx.stopped()) break;
        Candidate grown = GrowCandidate(*slots_[idx], nb, query_,
                                        scorer_.index());
        const size_t before = slots_.size();
        if (Admit(ctx, std::move(grown), audit_bound_[idx],
                  /*from_merge=*/false)) {
          MergeClosure(ctx, before);
        }
      }
    }

    if (queue_.empty() && !ctx.stopped()) {
      proven_optimal_ = !budget_exhausted_;
    }
    return ctx.stopped() ? ctx.stop_status() : Status::OK();
  }

  Result<std::vector<RankedAnswer>> Emit(ExecutionContext& ctx) override {
    ctx.stages().bound_calls = ranker_->bound_calls();
    return answers_.Take();
  }

  void FillStats(SearchStats* stats) const override {
    stats->ranker = std::string(ranker_->name());
    stats->popped = popped_;
    stats->generated = generated_;
    stats->answers_found = answers_found_;
    stats->budget_exhausted = budget_exhausted_;
    stats->proven_optimal = proven_optimal_;
    stats->max_pruned_bound = max_pruned_bound_;
    stats->shard_early_stopped = shard_early_stopped_;
  }

 private:
  struct RegistryEntry {
    size_t idx;
    uint32_t non_root_leaves;
    KeywordMask covered;
  };

  // Admits a candidate: dedup, score if complete answer, enqueue, register.
  // `ancestor_bound` is the Theorem-1 audit chain bound inherited from the
  // candidate's grow/merge parents (kInf for seeds); audit_bound_[i] is the
  // minimum upper bound along slots_[i]'s derivation chain, and every
  // emitted answer must score within it (Lemma 1) — CIRANK_DCHECK enforces
  // that below.
  bool Admit(ExecutionContext& ctx, Candidate&& c, double ancestor_bound,
             bool from_merge) {
    if (c.diameter > options_.max_diameter ||
        !IsViableCandidate(c, query_, scorer_.index())) {
      ++ctx.stages().candidates_pruned;
      return false;
    }
    std::string key = CandidateKey(c);
    if (!seen_.insert(std::move(key)).second) return false;
    ++generated_;
    ++ctx.stages().candidates_generated;
    if (from_merge) ++ctx.stages().candidates_merged;
    // Budget accounting: exhaustion latches the stop flag; the candidate
    // just admitted still completes so the partial state stays consistent.
    (void)ctx.ChargeCandidates(1);

    c.upper_bound = ranker_->UpperBound(c);
    const double chain_bound = std::min(ancestor_bound, c.upper_bound);

    if (c.IsComplete(all_) && c.tree.IsReduced(query_, scorer_.index())) {
      // Scoring runs on the canonical representative so the stored answer
      // (and its floating-point score) does not depend on which derivation
      // reached this tree first — a precondition for the byte-identical
      // guarantee shared with the parallel executor.
      Jtt canon = c.tree.Canonicalized();
      const double score = ranker_->ScoreAnswer(canon, query_);
      CIRANK_DCHECK(score <=
                    chain_bound + 1e-9 * std::max(1.0, std::abs(chain_bound)))
          << "Theorem 1 admissibility violated: emitted tree "
          << canon.CanonicalKey() << " scores " << score
          << " above its derivation-chain bound " << chain_bound;
      // Publication key, captured before the move below. Offer() returns
      // true for every tree new to *this* shard — including one immediately
      // truncated off the local top-k — and publishing those too is safe:
      // the gatherer's k-th-distinct-score threshold over the published set
      // equals the one over the union of the local top-k lists (an answer
      // truncated locally had k better answers in the same shard).
      std::string publish_key;
      if (shard_ != nullptr) publish_key = canon.CanonicalKey();
      if (answers_.Offer(std::move(canon), score)) {
        ++answers_found_;
        if (shard_ != nullptr) shard_->PublishAnswer(publish_key, score);
      }
    }

    Candidate* slot = ctx.arena().New<Candidate>(std::move(c));
    slots_.push_back(slot);
    audit_bound_.push_back(chain_bound);
    const size_t idx = slots_.size() - 1;
    if (slot->upper_bound > 0.0) {
      queue_.push({slot->upper_bound, idx});
    }
    by_root_[slot->root()].push_back(
        RegistryEntry{idx, NonRootLeafCount(*slot), slot->covered});
    return true;
  }

  // Merges a freshly admitted candidate against everything registered at its
  // root, cascading so multi-way merges are reachable (closure of Alg. 1's
  // Smerge step).
  void MergeClosure(ExecutionContext& ctx, size_t start_idx) {
    const uint32_t max_leaves = static_cast<uint32_t>(query_.size());
    std::vector<size_t> worklist{start_idx};
    while (!worklist.empty()) {
      if (ctx.stopped()) return;
      const size_t idx = worklist.back();
      worklist.pop_back();
      const NodeId root = slots_[idx]->root();
      const uint32_t my_leaves = NonRootLeafCount(*slots_[idx]);
      const KeywordMask my_mask = slots_[idx]->covered;
      // Snapshot: Admit() may grow the registry while we iterate.
      std::vector<RegistryEntry> partners = by_root_[root];
      for (const RegistryEntry& other : partners) {
        if (other.idx == idx) continue;
        // Fast pre-filters: the merged tree keeps both sides' non-root
        // leaves, so it can only stay viable when their counts fit within
        // |Q|; the strict rule additionally needs coverage growth.
        if (my_leaves + other.non_root_leaves > max_leaves) continue;
        if (options_.strict_merge_rule) {
          const KeywordMask merged_mask = my_mask | other.covered;
          if (merged_mask == my_mask || merged_mask == other.covered) {
            continue;
          }
        }
        Result<Candidate> merged = MergeCandidates(
            *slots_[idx], *slots_[other.idx], options_.strict_merge_rule);
        if (!merged.ok()) continue;
        const size_t before = slots_.size();
        const double parents_bound =
            std::min(audit_bound_[idx], audit_bound_[other.idx]);
        if (Admit(ctx, std::move(merged).value(), parents_bound,
                  /*from_merge=*/true)) {
          worklist.push_back(before);
        }
      }
    }
  }

  const TreeScorer& scorer_;
  const Query& query_;
  const SearchOptions options_;
  // Null unless this query is a per-shard sub-search (core/shard_hooks.h).
  const ShardHooks* const shard_;

  std::unique_ptr<Ranker> ranker_;
  KeywordMask all_ = 0;

  // Arena-placed candidates; the priority queue and root registry hold
  // indices into slots_.
  std::vector<Candidate*> slots_;
  std::vector<double> audit_bound_;
  std::priority_queue<std::pair<double, size_t>> queue_;  // (ub, slot idx)
  std::map<NodeId, std::vector<RegistryEntry>> by_root_;
  std::set<std::string> seen_;
  TopKAnswers answers_;

  int64_t popped_ = 0;
  int64_t generated_ = 0;
  int64_t answers_found_ = 0;
  bool budget_exhausted_ = false;
  bool proven_optimal_ = false;
  bool shard_early_stopped_ = false;
  double max_pruned_bound_ = 0.0;
};

}  // namespace

Result<std::unique_ptr<SearchExecutor>> MakeBnbExecutor(
    const ExecutorEnv& env) {
  if (env.scorer == nullptr || env.query == nullptr) {
    return Status::InvalidArgument("executor env missing scorer or query");
  }
  if (env.query->empty()) return Status::InvalidArgument("empty query");
  if (env.query->size() > Query::kMaxKeywords) {
    return Status::InvalidArgument("at most 31 keywords are supported");
  }
  if (env.options.k <= 0) return Status::InvalidArgument("k must be positive");
  std::unique_ptr<SearchExecutor> executor = std::make_unique<BnbExecutor>(env);
  return executor;
}

Result<std::vector<RankedAnswer>> BranchAndBoundSearch(
    const TreeScorer& scorer, const Query& query, const SearchOptions& options,
    SearchStats* stats) {
  ExecutorEnv env{&scorer, &query, options};
  CIRANK_ASSIGN_OR_RETURN(std::unique_ptr<SearchExecutor> executor,
                          MakeBnbExecutor(env));
  ExecutionContext ctx(ExecutionLimits::FromOptions(options));
  return RunSearchPipeline(*executor, ctx, stats);
}

}  // namespace cirank
