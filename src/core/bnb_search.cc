#include "core/bnb_search.h"

#include <algorithm>
#include <limits>
#include <map>
#include <queue>
#include <set>
#include <string>

#include "core/topk.h"
#include "util/check.h"

namespace cirank {

Result<std::vector<RankedAnswer>> BranchAndBoundSearch(
    const TreeScorer& scorer, const Query& query, const SearchOptions& options,
    SearchStats* stats) {
  if (query.empty()) return Status::InvalidArgument("empty query");
  if (query.size() > 31) {
    return Status::InvalidArgument("at most 31 keywords are supported");
  }
  if (options.k <= 0) return Status::InvalidArgument("k must be positive");

  SearchStats local_stats;
  SearchStats& st = stats != nullptr ? *stats : local_stats;
  st = SearchStats{};

  const Graph& graph = scorer.model().graph();
  const InvertedIndex& index = scorer.index();
  UpperBoundCalculator calc(scorer, query, options.max_diameter,
                            options.bounds);
  const KeywordMask all = calc.all_keywords_mask();

  // Candidate arena; the priority queue and root registry hold indices.
  std::vector<Candidate> arena;
  using QueueEntry = std::pair<double, size_t>;  // (upper bound, arena index)
  std::priority_queue<QueueEntry> queue;
  // Registry entries carry the cheap merge pre-filter fields inline so hub
  // roots with thousands of candidates can be scanned without touching the
  // candidates themselves.
  struct RegistryEntry {
    size_t idx;
    uint32_t non_root_leaves;
    KeywordMask covered;
  };
  std::map<NodeId, std::vector<RegistryEntry>> by_root;
  std::set<std::string> seen_candidates;
  TopKAnswers answers(static_cast<size_t>(options.k));

  // Theorem-1 admissibility audit (debug builds): audit_bound[i] is the
  // minimum upper bound along arena[i]'s derivation chain (itself plus every
  // grow/merge ancestor). Every emitted answer tree is derivable from each
  // of those candidates, so by Lemma 1 its exact score may never exceed any
  // bound on the chain; CIRANK_DCHECK enforces that below. The bookkeeping
  // (one double per candidate) is kept in release builds too, where the
  // check compiles out.
  std::vector<double> audit_bound;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  auto audit_slack = [](double bound) {
    return 1e-9 * std::max(1.0, std::abs(bound));
  };

  // Admits a candidate: dedup, score if complete answer, enqueue, register.
  // `ancestor_bound` is the audit chain bound inherited from the candidate's
  // grow/merge parents (kInf for seeds).
  auto admit = [&](Candidate&& c, double ancestor_bound) -> bool {
    if (c.diameter > options.max_diameter) return false;
    if (!IsViableCandidate(c, query, index)) return false;
    std::string key = CandidateKey(c);
    if (!seen_candidates.insert(std::move(key)).second) return false;
    ++st.generated;

    c.upper_bound = calc.UpperBound(c);
    const double chain_bound = std::min(ancestor_bound, c.upper_bound);

    if (c.IsComplete(all) && c.tree.IsReduced(query, index)) {
      // Scoring runs on the canonical representative so the stored answer
      // (and its floating-point score) does not depend on which derivation
      // reached this tree first — a precondition for the byte-identical
      // guarantee shared with ParallelBnbSearch.
      Jtt canon = c.tree.Canonicalized();
      TreeScore ts = scorer.Score(canon, query);
      CIRANK_DCHECK(ts.score <= chain_bound + audit_slack(chain_bound))
          << "Theorem 1 admissibility violated: emitted tree "
          << canon.CanonicalKey() << " scores " << ts.score
          << " above its derivation-chain bound " << chain_bound;
      if (answers.Offer(std::move(canon), ts.score)) ++st.answers_found;
    }

    arena.push_back(std::move(c));
    audit_bound.push_back(chain_bound);
    const size_t idx = arena.size() - 1;
    if (arena[idx].upper_bound > 0.0) {
      queue.push({arena[idx].upper_bound, idx});
    }
    by_root[arena[idx].root()].push_back(RegistryEntry{
        idx, NonRootLeafCount(arena[idx]), arena[idx].covered});
    return true;
  };

  // Merges a freshly admitted candidate against everything registered at its
  // root, cascading so multi-way merges are reachable (closure of Alg. 1's
  // Smerge step).
  const uint32_t max_leaves = static_cast<uint32_t>(query.size());
  auto merge_closure = [&](size_t start_idx) {
    std::vector<size_t> worklist{start_idx};
    while (!worklist.empty()) {
      const size_t idx = worklist.back();
      worklist.pop_back();
      const NodeId root = arena[idx].root();
      const uint32_t my_leaves = NonRootLeafCount(arena[idx]);
      const KeywordMask my_mask = arena[idx].covered;
      // Snapshot: admit() may grow the registry while we iterate.
      std::vector<RegistryEntry> partners = by_root[root];
      for (const RegistryEntry& other : partners) {
        if (other.idx == idx) continue;
        // Fast pre-filters: the merged tree keeps both sides' non-root
        // leaves, so it can only stay viable when their counts fit within
        // |Q|; the strict rule additionally needs coverage growth.
        if (my_leaves + other.non_root_leaves > max_leaves) continue;
        if (options.strict_merge_rule) {
          const KeywordMask merged_mask = my_mask | other.covered;
          if (merged_mask == my_mask || merged_mask == other.covered) {
            continue;
          }
        }
        Result<Candidate> merged = MergeCandidates(
            arena[idx], arena[other.idx], options.strict_merge_rule);
        if (!merged.ok()) continue;
        const size_t before = arena.size();
        const double parents_bound =
            std::min(audit_bound[idx], audit_bound[other.idx]);
        if (admit(std::move(merged).value(), parents_bound)) {
          worklist.push_back(before);
        }
      }
    }
  };

  // Seed with single-node candidates for every non-free node (line 3-6).
  {
    std::set<NodeId> seeds;
    for (const std::string& k : query.keywords) {
      for (NodeId v : index.MatchingNodes(k)) seeds.insert(v);
    }
    for (NodeId v : seeds) {
      Candidate c;
      c.tree = Jtt(v);
      c.covered = NodeKeywordMask(v, query, index);
      c.diameter = 0;
      admit(std::move(c), kInf);
    }
  }

  while (!queue.empty()) {
    auto [ub, idx] = queue.top();
    queue.pop();
    if (ub < arena[idx].upper_bound) continue;  // stale (should not happen)

    // Stopping rule (lines 9-11): nothing left can beat — or canonically
    // displace a tie with — the k-th answer. The inequality is strict so
    // candidates tying with the k-th score are still expanded; that makes
    // the output independent of expansion order (see bnb_search.h).
    if (answers.Full() && ub < answers.MinScore()) {
      st.max_pruned_bound = std::max(st.max_pruned_bound, ub);
      st.proven_optimal = true;
      break;
    }
    ++st.popped;
    if (options.max_expansions > 0 && st.popped > options.max_expansions) {
      st.budget_exhausted = true;
      break;
    }

    // Tree growing (line 12): every graph neighbor of the root not yet in
    // the tree becomes a new root.
    const Candidate& c = arena[idx];
    const NodeId root = c.root();
    std::vector<NodeId> neighbors;
    for (const Edge& e : graph.out_edges(root)) {
      if (!c.tree.contains(e.to)) neighbors.push_back(e.to);
    }
    for (NodeId nb : neighbors) {
      Candidate grown = GrowCandidate(arena[idx], nb, query, index);
      const size_t before = arena.size();
      if (admit(std::move(grown), audit_bound[idx])) {
        merge_closure(before);
      }
    }
  }

  if (queue.empty()) st.proven_optimal = !st.budget_exhausted;
  return answers.Take();
}

}  // namespace cirank
