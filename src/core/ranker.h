// The pluggable ranking layer (DESIGN.md §15). Enumeration and scoring are
// separate concerns: the SearchExecutor pipeline (core/execution.h) discovers
// answer trees, and a Ranker assigns every complete answer its score. One
// executor can therefore serve any ranking function — RWMP, the IR-style and
// graph-based baselines, the rejected-alternative ablations, and weighted
// composites — selected per query via SearchOptions::ranker.
//
// The admissibility contract: Ranker::UpperBound(c) must be >= the ranker's
// ScoreAnswer for *every* answer tree derivable from candidate `c` (Lemma 1
// generalized). The branch-and-bound executors prune on this bound, so an
// inadmissible bound silently drops correct answers; rankers that cannot
// bound cheaply inherit the default (+infinity), which is always admissible
// and merely disables pruning.
#ifndef CIRANK_CORE_RANKER_H_
#define CIRANK_CORE_RANKER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/candidate.h"
#include "core/jtt.h"
#include "core/options.h"
#include "core/scorer.h"
#include "util/status.h"

namespace cirank {

// One query's scoring function. Instances are created per query (via
// RankerRegistry) and are NOT thread-safe: the rwmp ranker's bound state
// memoizes per-query caches, so the parallel executor builds one ranker per
// worker, exactly as it did for UpperBoundCalculator.
class Ranker {
 public:
  virtual ~Ranker() = default;

  // Registry name of this ranker ("rwmp", "spark", "rwmp_x_text", ...).
  virtual std::string_view name() const = 0;

  // Score of a complete answer tree; higher is better. Must be
  // deterministic — the executors rely on bitwise-reproducible scores for
  // the byte-identical serial/parallel guarantee.
  virtual double ScoreAnswer(const Jtt& tree, const Query& query) const = 0;

  // Upper bound on ScoreAnswer over every answer derivable from `c`
  // (admissibility contract above). The default is +infinity: always
  // admissible, never prunes. Returning 0 asserts that no valid answer can
  // be derived from `c` at all (the executors drop such candidates from the
  // frontier).
  virtual double UpperBound(const Candidate& c) const;

  // Number of UpperBound() evaluations so far (StageStats::bound_calls);
  // rankers without bound state report 0.
  virtual int64_t bound_calls() const { return 0; }
};

// Everything a factory needs to build a ranker for one query. `scorer` must
// be non-null (it carries the model, importance vector, and inverted index
// every ranking function reads). A null `query` skips per-query bound state:
// the ranker scores answers but reports the default +infinity bound — the
// right mode for pool scoring and the eval sweeps, where UpperBound is never
// consulted. The pointees must outlive the ranker.
struct RankerEnv {
  const TreeScorer* scorer = nullptr;
  const Query* query = nullptr;
  SearchOptions options;
};

using RankerFactory =
    std::function<Result<std::unique_ptr<Ranker>>(const RankerEnv&)>;

// Name → factory map, mirroring ExecutorRegistry. The global instance comes
// pre-loaded with the core rankers ("rwmp", "rwmp_x_text", and the Sec. III-B
// ablations); baselines register "spark"/"discover2"/"banks" via
// RegisterBaselineExecutors() to keep the core library free of a dependency
// cycle. Thread-safe.
class RankerRegistry {
 public:
  // The process-wide registry used by the executors and the serving layer.
  static RankerRegistry& Global();

  // Fails with AlreadyExists-style InvalidArgument on duplicate names.
  [[nodiscard]] Status Register(std::string name, RankerFactory factory);

  [[nodiscard]] Result<std::unique_ptr<Ranker>> Create(
      const std::string& name, const RankerEnv& env) const;

  bool Contains(const std::string& name) const;
  std::vector<std::string> Names() const;  // sorted

 private:
  struct Impl;
  RankerRegistry();
  ~RankerRegistry();
  std::unique_ptr<Impl> impl_;
};

// Adapter for scoring functions that live outside src/core (baseline
// scorers, bench-only ablations, test doubles): wraps plain callables so no
// other file needs to subclass Ranker — the analyzer's `tree-scoring` rule
// holds every ScoreAnswer implementation inside src/core.
class DelegatingRanker final : public Ranker {
 public:
  using ScoreFn = std::function<double(const Jtt&, const Query&)>;
  using BoundFn = std::function<double(const Candidate&)>;

  // `bound` may be null (default +infinity bound). `score` must be
  // deterministic, per the Ranker contract.
  DelegatingRanker(std::string name, ScoreFn score, BoundFn bound = nullptr)
      : name_(std::move(name)),
        score_(std::move(score)),
        bound_(std::move(bound)) {}

  std::string_view name() const override { return name_; }
  double ScoreAnswer(const Jtt& tree, const Query& query) const override {
    return score_(tree, query);
  }
  double UpperBound(const Candidate& c) const override;

 private:
  std::string name_;
  ScoreFn score_;
  BoundFn bound_;
};

// The BM25 text component of the "rwmp_x_text" composite: for each keyword,
// the best per-node BM25 contribution over the tree's nodes, summed across
// keywords (k1 = 1.2, b = 0.75, per-relation df/avdl statistics from the
// inverted index). Exposed for the composite's property tests.
double Bm25TextScore(const InvertedIndex& index, const Jtt& tree,
                     const Query& query);

}  // namespace cirank

#endif  // CIRANK_CORE_RANKER_H_
