// Scoring of answer trees under RWMP (Sec. III-C.3). Each keyword-matching
// ("non-free") node emits messages; messages travel along tree edges,
// splitting proportionally to edge weights and shedding mass at every node
// they pass through or arrive at (the dampening of Eq. 2). A node's score is
// the size of its least populous incoming message type (Eq. 3) and the tree
// score is the average over non-free nodes (Eq. 4).
#ifndef CIRANK_CORE_SCORER_H_
#define CIRANK_CORE_SCORER_H_

#include <vector>

#include "core/jtt.h"
#include "core/rwmp.h"

namespace cirank {

struct NodeScore {
  NodeId node = kInvalidNode;
  double score = 0.0;
};

struct TreeScore {
  // Eq. 4: average of non-free node scores. 0 for trees with no non-free
  // node (not valid answers anyway).
  double score = 0.0;
  std::vector<NodeScore> node_scores;  // one entry per non-free node
};

// Flow of one source's messages measured at a tree node.
struct Flow {
  NodeId node = kInvalidNode;
  // Post-dampening message count at this node (f in the paper's notation;
  // equals the emission for the source itself).
  double count = 0.0;
};

class TreeScorer {
 public:
  // All referenced objects must outlive the scorer.
  TreeScorer(const RwmpModel& model, const InvertedIndex& index)
      : model_(&model), index_(&index) {}

  // Scores a tree for a query. Nodes matching no keyword contribute no score
  // term; when the tree has a single non-free node its score is its own
  // emission count (see DESIGN.md, "Single-source trees").
  TreeScore Score(const Jtt& tree, const Query& query) const;

  // Propagates `emission` message units from `source` through the tree and
  // returns the post-dampening flow at every tree node (the source's entry
  // carries the emission itself). Exposed for the bound calculator and tests.
  std::vector<Flow> Propagate(const Jtt& tree, NodeId source,
                              double emission) const;

  const RwmpModel& model() const { return *model_; }
  const InvertedIndex& index() const { return *index_; }

 private:
  const RwmpModel* model_;
  const InvertedIndex* index_;
};

}  // namespace cirank

#endif  // CIRANK_CORE_SCORER_H_
