// The unified query-execution pipeline (DESIGN.md §10). Every search
// implementation — serial branch-and-bound, the shared-frontier parallel
// search, the naive algorithm, and the baseline rankers — implements one
// SearchExecutor interface (Prepare → Expand → Emit) and is driven by a
// per-query ExecutionContext that owns
//   (a) a monotonic Arena all candidate trees and scratch state are placed
//       into, freed wholesale when the query ends;
//   (b) a deadline + candidate-budget guard, so every executor returns its
//       best-so-far partial top-k (flagged `truncated` with a
//       DeadlineExceeded stop status) instead of running unbounded; and
//   (c) a StageStats block (candidates generated/pruned/merged, arena
//       bytes, bound-calculator calls, wall time per stage) surfaced
//       through SearchStats, the CLI, and the bench JSON.
// CiRankEngine selects executors by name through ExecutorRegistry
// (SearchOverrides.executor), so one code path serves every algorithm.
// Executors only *enumerate*: answer scoring is delegated to the Ranker
// selected by SearchOptions::ranker (core/ranker.h), and ExecuteSearch
// applies the optional SearchOptions::order_by presentation reordering
// (core/order_by.h) to the emitted top-k.
#ifndef CIRANK_CORE_EXECUTION_H_
#define CIRANK_CORE_EXECUTION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/bounds.h"
#include "core/jtt.h"
#include "core/options.h"
#include "core/scorer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/arena.h"
#include "util/status.h"

namespace cirank {

// ---------------------------------------------------------------------------
// Search results (shared by every executor). The configuration structs —
// SearchOptions, SearchOverrides, BatchSearchOptions — live in
// core/options.h and are re-exported through this include.

struct RankedAnswer {
  Jtt tree;
  double score = 0.0;
};

// Per-stage observability block. Counters are exact totals; wall times are
// measured by the pipeline driver around each stage.
struct StageStats {
  int64_t candidates_generated = 0;  // admitted by grow/merge/seed
  int64_t candidates_pruned = 0;     // rejected: viability/diameter/bound
  int64_t candidates_merged = 0;     // admitted specifically via merge
  int64_t bound_calls = 0;           // Ranker::UpperBound calls
  size_t arena_bytes = 0;            // ExecutionContext arena bytes used
  double prepare_seconds = 0.0;
  double expand_seconds = 0.0;
  double emit_seconds = 0.0;
};

struct SearchStats {
  int64_t popped = 0;          // candidates dequeued and expanded
  int64_t generated = 0;       // candidates created by grow/merge
  int64_t answers_found = 0;   // distinct complete answers scored
  bool budget_exhausted = false;
  bool proven_optimal = false;
  // Largest upper bound ever discarded by the stopping rule (0 when nothing
  // was pruned). By Lemma 1 every answer derivable from a pruned candidate
  // scores at most this, so admissibility demands it stay strictly below
  // the k-th returned score; the property test asserts exactly that.
  double max_pruned_bound = 0.0;

  // --- Execution-pipeline fields (DESIGN.md §10) --------------------------
  // The deadline or candidate budget cut the search short; the answers are
  // the best found so far, not a proven top-k.
  bool truncated = false;
  // The result was served from the engine's LRU cache (batch path); all
  // other counters are zero because no search ran.
  bool from_cache = false;
  // Name of the executor that served the query ("bnb", "parallel", ...).
  std::string executor;
  // Name of the ranker that scored the answers ("rwmp", "rwmp_x_text", ...)
  // as reported by the executor; empty for legacy direct entry points.
  std::string ranker;
  // Sharded sub-searches only (DESIGN.md §16): the stopping rule fired
  // because of the *global* cross-shard threshold while the shard's own
  // local top-k would have kept expanding. The early-termination property
  // test keys off this flag: such a shard must never have discarded a bound
  // at or above the global k-th answer.
  bool shard_early_stopped = false;
  StageStats stages;
};

// ---------------------------------------------------------------------------
// Per-query execution context.

struct ExecutionLimits {
  double deadline_ms = 0.0;      // 0 = no deadline
  int64_t candidate_budget = 0;  // 0 = unlimited

  static ExecutionLimits FromOptions(const SearchOptions& options) {
    return ExecutionLimits{options.deadline_ms, options.candidate_budget};
  }
};

// Owns the arena, the deadline/budget guard, and the stage counters for one
// query. Charge/stop checks are lock-free (atomics) so the parallel
// executor's workers can consult them concurrently; the arena itself is NOT
// thread-safe and must be confined to one thread or an external mutex (the
// parallel executor allocates only under its shared-state lock). The three
// atomics below are deliberately outside any capability (DESIGN.md §12):
// the counters are relaxed (readers tolerate staleness), while the sticky
// stop_reason_ publishes with release/acquire so a worker observing a stop
// also observes why.
class ExecutionContext {
 public:
  enum class StopReason { kNone, kDeadline, kCandidateBudget };

  explicit ExecutionContext(const ExecutionLimits& limits = {});

  Arena& arena() { return arena_; }

  // Records `n` admitted candidates against the budget. Returns false — and
  // latches the stop flag — once the budget is exhausted.
  bool ChargeCandidates(int64_t n = 1);

  // True when the executor must stop expanding and emit what it has. The
  // deadline clock is consulted at most once per kDeadlineCheckStride calls
  // so hot loops can call this per candidate.
  bool ShouldStop();

  // Stop state inspection (exact; no clock probes).
  bool stopped() const {
    return stop_reason_.load(std::memory_order_acquire) != StopReason::kNone;
  }
  StopReason stop_reason() const {
    return stop_reason_.load(std::memory_order_acquire);
  }
  // OK while running to completion; DeadlineExceeded / ResourceExhausted-
  // style status describing why the result is partial otherwise.
  Status stop_status() const;

  int64_t candidates_charged() const {
    return charged_.load(std::memory_order_relaxed);
  }
  const ExecutionLimits& limits() const { return limits_; }

  // Stage counters. Single-writer or externally synchronized (the parallel
  // executor merges its per-worker counts under its own lock).
  StageStats& stages() { return stages_; }
  const StageStats& stages() const { return stages_; }

  // Binds the observability sinks the pipeline driver records into; either
  // may be null (no recording — the default). Binding a trace collector
  // claims a fresh track so this query's spans land on their own row.
  // `trace_id` is the request correlation id (obs/request_context.h),
  // stamped on every span this query records; 0 = no request scope.
  void BindObservability(obs::MetricsRegistry* metrics,
                         obs::TraceCollector* trace, uint64_t trace_id = 0) {
    metrics_ = metrics;
    trace_ = trace;
    trace_id_ = trace_id;
    if (trace_ != nullptr) trace_track_ = trace_->NewTrack();
  }
  obs::MetricsRegistry* metrics() const { return metrics_; }
  obs::TraceCollector* trace() const { return trace_; }
  int64_t trace_track() const { return trace_track_; }
  uint64_t trace_id() const { return trace_id_; }

 private:
  static constexpr int64_t kDeadlineCheckStride = 64;

  ExecutionLimits limits_;
  Arena arena_;
  std::chrono::steady_clock::time_point deadline_{};  // valid iff has_deadline_
  bool has_deadline_ = false;
  std::atomic<int64_t> charged_{0};
  std::atomic<int64_t> stop_probe_{0};
  std::atomic<StopReason> stop_reason_{StopReason::kNone};
  StageStats stages_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TraceCollector* trace_ = nullptr;
  int64_t trace_track_ = 0;
  uint64_t trace_id_ = 0;
};

// ---------------------------------------------------------------------------
// The executor interface and pipeline driver.

// One query's execution, split into the three pipeline stages. Lifetime: an
// executor is created per query (via ExecutorRegistry) and driven once by
// RunSearchPipeline; the ExecutionContext outlives the executor, so arena-
// placed state may be referenced across stages.
class SearchExecutor {
 public:
  virtual ~SearchExecutor() = default;

  // Registry name of this executor ("bnb", "parallel", ...).
  virtual std::string_view name() const = 0;

  // Builds per-query state: bound calculators, seeds, BFS tables. Errors
  // here (invalid query, bad options) fail the whole search.
  virtual Status Prepare(ExecutionContext& ctx) = 0;

  // The main loop. Implementations must poll ctx.ShouldStop() (and charge
  // admitted candidates via ctx.ChargeCandidates) so deadlines and budgets
  // truncate instead of running unbounded; returning with ctx.stopped() set
  // is not an error.
  virtual Status Expand(ExecutionContext& ctx) = 0;

  // Collects the (possibly partial) top-k. Must succeed even when Expand
  // was truncated.
  virtual Result<std::vector<RankedAnswer>> Emit(ExecutionContext& ctx) = 0;

  // Writes the algorithm-level counters (popped/generated/answers_found,
  // budget/optimality flags, max_pruned_bound) into `stats`. Called by the
  // pipeline driver after Emit; the driver itself owns the pipeline-level
  // fields (executor, truncated, stages).
  virtual void FillStats(SearchStats* stats) const { (void)stats; }
};

// Everything a factory needs to build an executor for one query. The
// pointees must outlive the executor.
struct ExecutorEnv {
  const TreeScorer* scorer = nullptr;
  const Query* query = nullptr;
  SearchOptions options;
  // Observability sinks bound into the ExecutionContext by ExecuteSearch;
  // null disables recording. The pipeline driver is the single
  // instrumentation point, so every registered executor — core and
  // baseline — reports the same metric families and span shapes.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceCollector* trace = nullptr;
  // Request correlation id threaded down from the serving layer
  // (obs/request_context.h); 0 when the query has no request scope.
  uint64_t trace_id = 0;
};

using ExecutorFactory =
    std::function<Result<std::unique_ptr<SearchExecutor>>(const ExecutorEnv&)>;

// Name → factory map. The global instance comes pre-loaded with the core
// executors ("bnb", "parallel", "naive"); baselines register via
// RegisterBaselineExecutors() (baselines/baseline_executors.h) to keep the
// core library free of a dependency cycle. Thread-safe.
class ExecutorRegistry {
 public:
  // The process-wide registry used by CiRankEngine.
  static ExecutorRegistry& Global();

  // Fails with AlreadyExists-style InvalidArgument on duplicate names.
  [[nodiscard]] Status Register(std::string name, ExecutorFactory factory);

  [[nodiscard]] Result<std::unique_ptr<SearchExecutor>> Create(
      const std::string& name, const ExecutorEnv& env) const;

  bool Contains(const std::string& name) const;
  std::vector<std::string> Names() const;  // sorted

 private:
  struct Impl;
  ExecutorRegistry();
  ~ExecutorRegistry();
  std::unique_ptr<Impl> impl_;
};

// Drives one executor through Prepare → Expand → Emit, timing each stage
// into ctx.stages() and folding the context's counters into `stats` (when
// non-null). A deadline/budget stop is surfaced as a *successful* result
// with stats->truncated set — callers needing the distinction inspect
// stats; the stop reason itself is ctx.stop_status().
[[nodiscard]] Result<std::vector<RankedAnswer>> RunSearchPipeline(
    SearchExecutor& executor, ExecutionContext& ctx, SearchStats* stats);

// Convenience wrapper used by the engine and tests: looks up
// `env.options.executor` in the global registry, builds the context from
// the options' limits, and runs the pipeline.
[[nodiscard]] Result<std::vector<RankedAnswer>> ExecuteSearch(
    const ExecutorEnv& env, SearchStats* stats = nullptr);

}  // namespace cirank

#endif  // CIRANK_CORE_EXECUTION_H_
