#include "core/feedback.h"

#include <algorithm>
#include <numeric>

namespace cirank {

Status FeedbackModel::RecordClick(NodeId v, double weight) {
  if (v >= clicks_.size()) {
    return Status::InvalidArgument("node out of range");
  }
  if (weight <= 0.0) {
    return Status::InvalidArgument("click weight must be positive");
  }
  clicks_[v] += weight;
  return Status::OK();
}

Status FeedbackModel::RecordAnswer(const std::vector<NodeId>& matched_nodes,
                                   const std::vector<NodeId>& connector_nodes,
                                   double weight) {
  for (NodeId v : matched_nodes) {
    CIRANK_RETURN_IF_ERROR(RecordClick(v, weight));
  }
  for (NodeId v : connector_nodes) {
    CIRANK_RETURN_IF_ERROR(RecordClick(v, weight * 0.5));
  }
  return Status::OK();
}

double FeedbackModel::total_clicks() const {
  return std::accumulate(clicks_.begin(), clicks_.end(), 0.0);
}

Result<std::vector<double>> FeedbackModel::TeleportVector(
    const FeedbackOptions& options) const {
  if (clicks_.empty()) return Status::FailedPrecondition("no nodes");
  if (options.smoothing <= 0.0) {
    return Status::InvalidArgument("smoothing must be positive");
  }
  if (options.strength < 0.0) {
    return Status::InvalidArgument("strength must be non-negative");
  }
  if (options.max_share_multiple <= 1.0) {
    return Status::InvalidArgument("max_share_multiple must exceed 1");
  }

  const size_t n = clicks_.size();
  const double total = total_clicks();
  std::vector<double> u(n);
  // Mass = smoothing baseline + normalized click share scaled by strength.
  for (size_t v = 0; v < n; ++v) {
    const double share = total > 0.0 ? clicks_[v] / total : 0.0;
    u[v] = options.smoothing / static_cast<double>(n) +
           options.strength * share;
  }
  // Cap runaway shares, then normalize to a probability vector.
  double sum = std::accumulate(u.begin(), u.end(), 0.0);
  const double cap = options.max_share_multiple * sum / static_cast<double>(n);
  for (double& x : u) x = std::min(x, cap);
  sum = std::accumulate(u.begin(), u.end(), 0.0);
  for (double& x : u) x /= sum;
  return u;
}

double FeedbackModel::EdgeBoost(NodeId from, NodeId to,
                                double intensity) const {
  const double total = total_clicks();
  if (total <= 0.0 || intensity <= 0.0) return 1.0;
  const double share = (clicks_[from] + clicks_[to]) / total;
  return 1.0 + intensity * std::min(1.0, share);
}

Result<Graph> FeedbackModel::ReweightGraph(const Graph& graph,
                                           double intensity) const {
  if (graph.num_nodes() != clicks_.size()) {
    return Status::InvalidArgument(
        "feedback model was built for a different graph");
  }
  GraphBuilder builder(graph.schema());
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    builder.AddNode(graph.relation_of(v), graph.text_of(v),
                    graph.external_key_of(v));
  }
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (const Edge& e : graph.out_edges(v)) {
      CIRANK_RETURN_IF_ERROR(builder.AddEdge(
          v, e.to, e.type, e.weight * EdgeBoost(v, e.to, intensity)));
    }
  }
  return builder.Finalize();
}

}  // namespace cirank
