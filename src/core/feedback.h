// User-feedback biasing (Sec. VI-A): the paper manually labels 29,078
// frequent AOL queries and uses them "as user feedback to bias the CI-RANK
// model". The natural mechanism in a random-walk model is personalized
// teleportation: entities that users click accumulate feedback mass, the
// teleportation vector u of Eq. 1 is tilted toward them, their PageRank
// importance rises, and through Eq. 2 so does their dampening rate (they
// become better connectors) and their emission strength.
//
// The paper's future-work section also asks for edge-weight adaptation;
// FeedbackModel::EdgeBoost provides a conservative version: edges incident
// to frequently clicked nodes are strengthened multiplicatively.
#ifndef CIRANK_CORE_FEEDBACK_H_
#define CIRANK_CORE_FEEDBACK_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace cirank {

struct FeedbackOptions {
  // Additive smoothing: every node keeps this much baseline teleport mass,
  // so unclicked nodes never lose reachability.
  double smoothing = 1.0;
  // Multiplier on accumulated click mass relative to the smoothing
  // baseline. 0 disables feedback (uniform teleportation).
  double strength = 1.0;
  // Cap on any single node's share of the teleport vector, as a multiple of
  // the uniform share; prevents a few celebrity entities from absorbing the
  // whole walk.
  double max_share_multiple = 100.0;
};

// Accumulates click/selection feedback per node and converts it into a
// personalized teleportation vector for ComputePageRank.
class FeedbackModel {
 public:
  explicit FeedbackModel(size_t num_nodes) : clicks_(num_nodes, 0.0) {}

  size_t num_nodes() const { return clicks_.size(); }

  // Records that a user selected (clicked) node v; `weight` scales the
  // event (e.g. query frequency in the log).
  [[nodiscard]] Status RecordClick(NodeId v, double weight = 1.0);

  // Records a whole selected answer: every node of the answer receives the
  // click, connectors at half weight (the user primarily endorsed the
  // matched entities).
  [[nodiscard]] Status RecordAnswer(const std::vector<NodeId>& matched_nodes,
                      const std::vector<NodeId>& connector_nodes,
                      double weight = 1.0);

  double clicks(NodeId v) const { return clicks_[v]; }
  double total_clicks() const;

  // The personalized teleportation vector u (sums to 1).
  [[nodiscard]] Result<std::vector<double>> TeleportVector(
      const FeedbackOptions& options = {}) const;

  // Multiplicative boost factor for the edge u -> v (>= 1): edges incident
  // to clicked nodes strengthen proportionally to the click share.
  // `intensity` controls the maximum boost (1 + intensity).
  double EdgeBoost(NodeId from, NodeId to, double intensity = 1.0) const;

  // Applies EdgeBoost to every edge of `graph` and returns the re-weighted
  // copy (node ids preserved).
  [[nodiscard]] Result<Graph> ReweightGraph(const Graph& graph,
                              double intensity = 1.0) const;

 private:
  std::vector<double> clicks_;
};

}  // namespace cirank

#endif  // CIRANK_CORE_FEEDBACK_H_
