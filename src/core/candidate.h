// Candidate trees for the branch-and-bound search (Sec. IV-B) and the
// grow/merge expansion operators. A candidate is a rooted tree covering at
// least one query keyword; the expansion invariant is that a candidate can
// only connect to the rest of a larger tree through its root.
#ifndef CIRANK_CORE_CANDIDATE_H_
#define CIRANK_CORE_CANDIDATE_H_

#include <cstdint>
#include <vector>

#include "core/jtt.h"
#include "core/rwmp.h"

namespace cirank {

// Bitmask over query keyword positions (limited to 31 keywords).
using KeywordMask = uint32_t;

struct Candidate {
  Jtt tree;
  KeywordMask covered = 0;
  // max(ce, pe); filled by UpperBoundCalculator.
  double upper_bound = 0.0;
  uint32_t diameter = 0;

  NodeId root() const { return tree.root(); }
  bool IsComplete(KeywordMask all) const { return (covered & all) == all; }
};

// Keyword coverage mask of a single node.
KeywordMask NodeKeywordMask(NodeId v, const Query& query,
                            const InvertedIndex& index);

// Tree growing: creates a candidate rooted at `new_root` whose single child
// subtree is `c` (adds the tree edge new_root -- c.root()). `new_root` must
// not already appear in `c`.
Candidate GrowCandidate(const Candidate& c, NodeId new_root,
                        const Query& query, const InvertedIndex& index);

// Tree merging: combines two candidates sharing the same root into one whose
// children are the union of both child sets. Fails (returns error) when the
// roots differ, the node sets overlap beyond the root (cycle sanity check),
// or -- when `strict_coverage_growth` is set (the paper's phrasing of the
// merge rule) -- the merged coverage does not strictly exceed both inputs.
// The strict rule can make some valid answers unreachable (e.g. two sibling
// branches with identical keyword masks), so the search defaults to the
// relaxed rule and prunes with IsViableCandidate instead.
[[nodiscard]] Result<Candidate> MergeCandidates(const Candidate& a, const Candidate& b,
                                  bool strict_coverage_growth = false);

// Number of degree-1 nodes of `c` other than its root. Both searches use
// this as the cheap merge pre-filter: a merged tree keeps both sides'
// non-root leaves, so the counts must fit within |Q|.
uint32_t NonRootLeafCount(const Candidate& c);

// A candidate can still expand into a valid answer only if its non-root
// degree-1 nodes (which can never gain edges -- only the root does) are
// matchable to distinct query keywords. Every rooted subtree of a valid
// answer satisfies this, so pruning on it preserves completeness while
// bounding candidate trees to at most |Q|+1 leaves.
bool IsViableCandidate(const Candidate& c, const Query& query,
                       const InvertedIndex& index);

}  // namespace cirank

#endif  // CIRANK_CORE_CANDIDATE_H_
