#include "core/scorer.h"

#include <algorithm>
#include <limits>

namespace cirank {

namespace {

// Index-based split denominators: out_weight[i] = sum over tree neighbors n
// of w(nodes[i] -> n).
void BuildOutWeights(const Graph& graph, const Jtt& tree,
                     std::vector<double>* out_weight) {
  const size_t n = tree.size();
  out_weight->assign(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const NodeId v = tree.nodes()[i];
    for (uint32_t nb : tree.NeighborIndices(i)) {
      (*out_weight)[i] += graph.edge_weight(v, tree.nodes()[nb]);
    }
  }
}

}  // namespace

std::vector<Flow> TreeScorer::Propagate(const Jtt& tree, NodeId source,
                                        double emission) const {
  const Graph& graph = model_->graph();
  const size_t n = tree.size();
  const size_t source_index = tree.IndexOf(source);

  std::vector<double> out_weight;
  BuildOutWeights(graph, tree, &out_weight);

  std::vector<double> post(n, 0.0);
  post[source_index] = emission;

  // Iterative DFS carrying the arrival (pre-dampening) count.
  struct Item {
    uint32_t node;
    uint32_t from;
    double arrival;
  };
  std::vector<Item> stack;
  stack.reserve(n);

  if (out_weight[source_index] > 0.0) {
    for (uint32_t nb : tree.NeighborIndices(source_index)) {
      const double share =
          graph.edge_weight(source, tree.nodes()[nb]) /
          out_weight[source_index];
      stack.push_back(Item{nb, static_cast<uint32_t>(source_index),
                           emission * share});
    }
  }

  while (!stack.empty()) {
    Item item = stack.back();
    stack.pop_back();
    // Dampening applies at every node the message passes through or reaches.
    const double f = item.arrival * model_->dampening(tree.nodes()[item.node]);
    post[item.node] = f;
    const double w_total = out_weight[item.node];
    if (w_total <= 0.0) continue;
    for (uint32_t nb : tree.NeighborIndices(item.node)) {
      if (nb == item.from) continue;  // back-flowing messages are discarded
      const double share =
          graph.edge_weight(tree.nodes()[item.node], tree.nodes()[nb]) /
          w_total;
      stack.push_back(Item{nb, item.node, f * share});
    }
  }

  std::vector<Flow> flows;
  flows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    flows.push_back(Flow{tree.nodes()[i], post[i]});
  }
  return flows;
}

TreeScore TreeScorer::Score(const Jtt& tree, const Query& query) const {
  // Non-free nodes of the tree and their emissions.
  std::vector<size_t> sources;  // indices into tree.nodes()
  std::vector<double> emissions;
  for (size_t i = 0; i < tree.size(); ++i) {
    const double e = model_->Emission(tree.nodes()[i], query, *index_);
    if (e > 0.0) {
      sources.push_back(i);
      emissions.push_back(e);
    }
  }

  TreeScore result;
  if (sources.empty()) return result;

  if (sources.size() == 1) {
    // Convention for single-source trees: the node's own emission.
    result.node_scores.push_back(
        NodeScore{tree.nodes()[sources[0]], emissions[0]});
    result.score = emissions[0];
    return result;
  }

  // flow_at[i][d]: post-dampening count of source i's messages at the tree
  // node with index sources[d].
  std::vector<std::vector<double>> flow_at(
      sources.size(), std::vector<double>(sources.size(), 0.0));
  for (size_t i = 0; i < sources.size(); ++i) {
    std::vector<Flow> flows =
        Propagate(tree, tree.nodes()[sources[i]], emissions[i]);
    for (size_t d = 0; d < sources.size(); ++d) {
      flow_at[i][d] = flows[sources[d]].count;
    }
  }

  double total = 0.0;
  for (size_t d = 0; d < sources.size(); ++d) {
    double least = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < sources.size(); ++i) {
      if (i == d) continue;
      least = std::min(least, flow_at[i][d]);
    }
    result.node_scores.push_back(NodeScore{tree.nodes()[sources[d]], least});
    total += least;
  }
  result.score = total / static_cast<double>(sources.size());
  return result;
}

}  // namespace cirank
