#include "core/engine.h"

#include <atomic>
#include <sstream>
#include <utility>

#include "core/parallel_search.h"
#include "util/annotations.h"
#include "util/check.h"
#include "obs/log.h"
#include "util/lru_cache.h"
#include "util/mutex.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace cirank {

namespace {

// Cache values are shared_ptr so a hit can be returned while a concurrent
// Clear() (feedback invalidation) drops the shard's copy.
using CachedAnswers = std::shared_ptr<const std::vector<RankedAnswer>>;

// The cache key must pin down everything the result depends on besides the
// model itself: normalized keywords plus the full search configuration.
// Model changes are handled by invalidation, not by the key.
std::string CacheKey(const Query& query, const SearchOptions& options) {
  std::ostringstream key;
  for (const std::string& k : query.keywords) key << k << ' ';
  key << "|k=" << options.k << "|d=" << options.max_diameter
      << "|x=" << options.max_expansions << "|s=" << options.strict_merge_rule
      << "|b=" << static_cast<const void*>(options.bounds)
      << "|e=" << options.executor << "|t=" << options.num_threads
      << "|r=" << options.ranker << "|o=" << options.order_by
      << "|w=" << options.composite_rwmp_weight << ','
      << options.composite_text_weight
      // Defensive: shard-scoped sub-searches go through the explicit-options
      // Search (never cached), but if one ever reached here its scope mask
      // must not alias an unsharded entry.
      << "|h=" << static_cast<const void*>(options.shard_hooks);
  return std::move(key).str();
}

}  // namespace

// Mutable serving-time state, split from the immutable model so the engine
// can stay const-correct: Search() is const yet touches the cache, and
// feedback accumulates across calls.
struct CiRankEngine::Serving {
  Serving(size_t num_nodes, const QueryCacheOptions& cache_options,
          obs::MetricsRegistry* metrics)
      : cache(cache_options.capacity, cache_options.shards),
        feedback(num_nodes) {
    obs.Bind(metrics);
  }

  // Pre-resolved instrument handles: the name→instrument map probe happens
  // once at Build, leaving only relaxed atomic ops on the serving path.
  // All pointers are null when the engine was built with
  // metrics_enabled = false.
  struct Obs {
    obs::Counter* queries = nullptr;
    obs::Counter* errors = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* cache_misses = nullptr;
    obs::Counter* truncated = nullptr;
    obs::Counter* invalidations = nullptr;
    obs::Histogram* query_seconds = nullptr;
    obs::Gauge* cache_entries = nullptr;
    obs::Gauge* queue_depth = nullptr;
    obs::Histogram* task_wait = nullptr;

    void Bind(obs::MetricsRegistry* m) {
      if (m == nullptr) return;
      queries = &m->GetCounter("cirank_engine_queries_total",
                               "Top-level queries served (cache hits + fresh)");
      errors = &m->GetCounter("cirank_engine_query_errors_total",
                              "Queries that returned a non-OK status");
      cache_hits = &m->GetCounter("cirank_engine_cache_hits_total",
                                  "Query-result cache hits");
      cache_misses = &m->GetCounter("cirank_engine_cache_misses_total",
                                    "Query-result cache misses");
      truncated = &m->GetCounter(
          "cirank_engine_truncated_total",
          "Queries whose result was cut short by a deadline/budget guard");
      invalidations = &m->GetCounter(
          "cirank_engine_feedback_invalidations_total",
          "Query-cache invalidations triggered by feedback/rebuild");
      query_seconds = &m->GetHistogram(
          "cirank_engine_query_seconds",
          "End-to-end latency of fresh (uncached) queries, seconds");
      cache_entries = &m->GetGauge("cirank_cache_entries",
                                   "Entries currently resident in the "
                                   "query-result cache");
      queue_depth = &m->GetGauge(
          "cirank_threadpool_queue_depth",
          "Peak task-queue depth observed by the last SearchBatch pool");
      task_wait = &m->GetHistogram(
          "cirank_threadpool_task_wait_seconds",
          "Submit-to-dequeue wait of thread-pool tasks, seconds");
    }
  };

  // Internally synchronized (per-shard capabilities; see lru_cache.h).
  ShardedLruCache<std::string, CachedAnswers> cache;

  // feedback_mu is the engine level — the top — of the declared lock
  // hierarchy (engine → cache-shard → pool): cache-shard and pool locks
  // may be acquired while it is held (they never are today), never the
  // reverse. mutable: FeedbackClicks reads through a const engine.
  mutable Mutex feedback_mu;
  FeedbackModel feedback CIRANK_GUARDED_BY(feedback_mu);

  Obs obs;

  // Incremented around every model read during a search; RebuildFromFeedback
  // refuses to run while nonzero. This is a guard rail against API misuse,
  // not a lock: the caller owns quiescence.
  std::atomic<int64_t> active_searches{0};

  // Publishes the cache's per-shard counters as {shard="i"}-labeled gauges.
  // Called after batches and from cache_stats(): per-shard values are
  // point-in-time exports of the cache's own atomics, so a gauge (Set) is
  // the right instrument even for the monotonic ones.
  void SyncCacheMetrics(obs::MetricsRegistry* m) {
    if (m == nullptr) return;
    if (obs.cache_entries != nullptr) {
      obs.cache_entries->Set(static_cast<double>(cache.size()));
    }
    const auto shards = cache.PerShardStats();
    for (size_t i = 0; i < shards.size(); ++i) {
      const std::string label = "{shard=\"" + std::to_string(i) + "\"}";
      m->GetGauge("cirank_cache_shard_hits" + label,
                  "Cache hits, by shard (cumulative, exported as a gauge)")
          .Set(static_cast<double>(shards[i].hits));
      m->GetGauge("cirank_cache_shard_evictions" + label,
                  "Cache evictions, by shard (cumulative, exported as a gauge)")
          .Set(static_cast<double>(shards[i].evictions));
    }
  }
};

CiRankEngine::CiRankEngine() = default;
CiRankEngine::CiRankEngine(CiRankEngine&&) noexcept = default;
CiRankEngine& CiRankEngine::operator=(CiRankEngine&&) noexcept = default;
CiRankEngine::~CiRankEngine() = default;

Result<CiRankEngine> CiRankEngine::Build(const Graph& graph,
                                         const CiRankOptions& options) {
  CIRANK_RETURN_IF_ERROR(options.rwmp.Validate());

  CiRankEngine engine;
  engine.graph_ = &graph;
  engine.options_ = options;
  engine.metrics_ =
      options.metrics_enabled
          ? (options.metrics != nullptr ? options.metrics
                                        : &obs::MetricsRegistry::Default())
          : nullptr;

  Timer total_timer;
  Timer stage_timer;
  engine.index_ = std::make_unique<InvertedIndex>(graph);
  const double index_seconds = stage_timer.ElapsedSeconds();

  stage_timer.Reset();
  CIRANK_ASSIGN_OR_RETURN(PageRankResult pr,
                          ComputePageRank(graph, options.pagerank));
  const double pagerank_seconds = stage_timer.ElapsedSeconds();
  CIRANK_ASSIGN_OR_RETURN(
      RwmpModel model,
      RwmpModel::Create(graph, std::move(pr.scores), options.rwmp));
  engine.model_ = std::make_unique<RwmpModel>(std::move(model));
  engine.scorer_ =
      std::make_unique<TreeScorer>(*engine.model_, *engine.index_);
  engine.serving_ = std::make_unique<Serving>(graph.num_nodes(), options.cache,
                                              engine.metrics_);

  if (engine.metrics_ != nullptr) {
    obs::MetricsRegistry& m = *engine.metrics_;
    m.GetGauge("cirank_build_index_seconds",
               "Wall time of the last inverted-index build")
        .Set(index_seconds);
    m.GetGauge("cirank_build_pagerank_seconds",
               "Wall time of the last PageRank computation")
        .Set(pagerank_seconds);
    m.GetGauge("cirank_build_total_seconds",
               "Wall time of the last full engine build (index + PageRank + "
               "RWMP model)")
        .Set(total_timer.ElapsedSeconds());
  }
  return engine;
}

SearchOptions CiRankEngine::EffectiveOptions(
    const SearchOverrides& overrides) const {
  return MergeOverrides(options_.search, overrides);
}

Result<std::vector<RankedAnswer>> CiRankEngine::Search(
    const Query& query, SearchStats* stats) const {
  return CachedSearch(query, options_.search, /*use_cache=*/true, stats);
}

Result<std::vector<RankedAnswer>> CiRankEngine::Search(
    const Query& query, const SearchOptions& options, SearchStats* stats,
    uint64_t trace_id) const {
  if (serving_->obs.queries != nullptr) serving_->obs.queries->Increment();
  return ExecuteUncached(query, options, stats, trace_id);
}

Result<std::vector<RankedAnswer>> CiRankEngine::ExecuteUncached(
    const Query& query, const SearchOptions& options, SearchStats* stats,
    uint64_t trace_id) const {
  serving_->active_searches.fetch_add(1, std::memory_order_acq_rel);
  // Dispatch through the executor registry: options.executor picks the
  // SearchExecutor ("bnb" by default), and the execution pipeline applies
  // the deadline/budget guard and stage accounting uniformly.
  ExecutorEnv env{scorer_.get(), &query,        options,
                  metrics_,      options_.trace, trace_id};
  // A local stats block keeps the truncation counter honest even when the
  // caller passed nullptr.
  SearchStats local;
  SearchStats* st = stats != nullptr ? stats : &local;
  Timer timer;
  auto result = ExecuteSearch(env, st);
  const double elapsed = timer.ElapsedSeconds();
  serving_->active_searches.fetch_sub(1, std::memory_order_acq_rel);

  const Serving::Obs& obs = serving_->obs;
  if (obs.query_seconds != nullptr) obs.query_seconds->Observe(elapsed);
  if (!result.ok()) {
    if (obs.errors != nullptr) obs.errors->Increment();
  } else if (st->truncated && obs.truncated != nullptr) {
    obs.truncated->Increment();
  }
  return result;
}

Result<std::vector<RankedAnswer>> CiRankEngine::Search(
    const Query& query, const SearchOverrides& overrides,
    SearchStats* stats) const {
  return CachedSearch(query, EffectiveOptions(overrides), /*use_cache=*/true,
                      stats);
}

Result<std::vector<RankedAnswer>> CiRankEngine::ServingSearch(
    const Query& query, const SearchOverrides& overrides, SearchStats* stats,
    const obs::RequestContext* request) const {
  auto result = CachedSearch(query, EffectiveOptions(overrides),
                             /*use_cache=*/true, stats,
                             /*stats_from_cache_ok=*/true,
                             request != nullptr ? request->trace_id : 0);
  // Scrapes happen between queries, so keep the cache gauges current here
  // rather than only on the batch path.
  serving_->SyncCacheMetrics(metrics_);
  return result;
}

Result<std::vector<RankedAnswer>> CiRankEngine::CachedSearch(
    const Query& query, const SearchOptions& options, bool use_cache,
    SearchStats* stats, bool stats_from_cache_ok, uint64_t trace_id) const {
  const Serving::Obs& obs = serving_->obs;
  if (obs.queries != nullptr) obs.queries->Increment();
  // Deadline- and budget-limited queries are never cached: what they return
  // depends on how far the search got before the guard fired, so a memoized
  // copy is neither reproducible nor necessarily the full answer.
  const bool cacheable = use_cache && serving_->cache.enabled() &&
                         options.deadline_ms <= 0.0 &&
                         options.candidate_budget <= 0;
  std::string key;
  if (cacheable) {
    key = CacheKey(query, options);
    // A cached result carries no fresh counters, so by default a
    // stats-requesting caller is served (and measured) fresh; batch callers
    // opt into hits annotated with the from_cache marker instead.
    if (stats == nullptr || stats_from_cache_ok) {
      if (auto hit = serving_->cache.Get(key); hit.has_value()) {
        if (obs.cache_hits != nullptr) obs.cache_hits->Increment();
        if (stats != nullptr) {
          *stats = SearchStats{};
          stats->from_cache = true;
          stats->executor = options.executor;
          stats->ranker = options.ranker;
        }
        return **hit;
      }
      // Counted only when a lookup actually happened, so the registry's
      // hit/miss counters track the cache's own counters exactly.
      if (obs.cache_misses != nullptr) obs.cache_misses->Increment();
    }
  }
  CIRANK_ASSIGN_OR_RETURN(std::vector<RankedAnswer> answers,
                          ExecuteUncached(query, options, stats, trace_id));
  if (cacheable) {
    serving_->cache.Put(
        std::move(key),
        std::make_shared<const std::vector<RankedAnswer>>(answers));
  }
  return answers;
}

std::vector<Result<std::vector<RankedAnswer>>> CiRankEngine::SearchBatch(
    const std::vector<Query>& queries, const BatchSearchOptions& options,
    std::vector<SearchStats>* stats) const {
  const SearchOptions merged = EffectiveOptions(options.overrides);
  std::vector<Result<std::vector<RankedAnswer>>> results(
      queries.size(),
      Result<std::vector<RankedAnswer>>(
          Status::Internal("batch entry not filled")));
  if (stats != nullptr) stats->assign(queries.size(), SearchStats{});
  if (queries.empty()) return results;

  const uint64_t hits_before = serving_->cache.hits();
  Timer batch_timer;
  {
    ThreadPool pool(options.num_threads);
    if (serving_->obs.task_wait != nullptr) {
      obs::Histogram* task_wait = serving_->obs.task_wait;
      pool.SetTaskWaitObserver(
          [task_wait](double seconds) { task_wait->Observe(seconds); });
    }
    pool.ParallelFor(queries.size(), [&](size_t i) {
      results[i] = CachedSearch(queries[i], merged, options.use_cache,
                                stats != nullptr ? &(*stats)[i] : nullptr,
                                /*stats_from_cache_ok=*/true);
    });
    if (serving_->obs.queue_depth != nullptr) {
      serving_->obs.queue_depth->Set(
          static_cast<double>(pool.stats().peak_queue_depth));
    }
  }
  serving_->SyncCacheMetrics(metrics_);

  if (metrics_ != nullptr) {
    size_t failed = 0;
    for (const auto& r : results) {
      if (!r.ok()) ++failed;
    }
    CIRANK_LOG(Info) << "SearchBatch: " << queries.size() << " queries, "
                     << (serving_->cache.hits() - hits_before)
                     << " cache hits, " << failed << " failed, "
                     << batch_timer.ElapsedSeconds() << " s wall ("
                     << options.num_threads << " threads)";
  }
  return results;
}

Status CiRankEngine::RecordFeedback(const std::vector<NodeId>& matched_nodes,
                                    const std::vector<NodeId>& connector_nodes,
                                    double weight) {
  {
    MutexLock lk(serving_->feedback_mu);
    CIRANK_RETURN_IF_ERROR(
        serving_->feedback.RecordAnswer(matched_nodes, connector_nodes,
                                        weight));
  }
  // Clicks shift what the engine *should* return (once rebuilt), so memoized
  // results are no longer trustworthy snapshots.
  serving_->cache.Clear();
  if (serving_->obs.invalidations != nullptr) {
    serving_->obs.invalidations->Increment();
  }
  return Status::OK();
}

Status CiRankEngine::RecordClick(NodeId v, double weight) {
  {
    MutexLock lk(serving_->feedback_mu);
    CIRANK_RETURN_IF_ERROR(serving_->feedback.RecordClick(v, weight));
  }
  serving_->cache.Clear();
  if (serving_->obs.invalidations != nullptr) {
    serving_->obs.invalidations->Increment();
  }
  return Status::OK();
}

double CiRankEngine::FeedbackClicks(NodeId v) const {
  MutexLock lk(serving_->feedback_mu);
  if (v >= serving_->feedback.num_nodes()) return 0.0;
  return serving_->feedback.clicks(v);
}

Status CiRankEngine::RebuildFromFeedback(const FeedbackOptions& options) {
  if (serving_->active_searches.load(std::memory_order_acquire) != 0) {
    return Status::FailedPrecondition(
        "RebuildFromFeedback requires quiesced search traffic");
  }
  std::vector<double> teleport;
  {
    MutexLock lk(serving_->feedback_mu);
    CIRANK_ASSIGN_OR_RETURN(teleport,
                            serving_->feedback.TeleportVector(options));
  }
  PageRankOptions pr_options = options_.pagerank;
  pr_options.teleport_vector = std::move(teleport);
  Timer pagerank_timer;
  CIRANK_ASSIGN_OR_RETURN(PageRankResult pr,
                          ComputePageRank(*graph_, pr_options));
  if (metrics_ != nullptr) {
    metrics_
        ->GetGauge("cirank_build_pagerank_seconds",
                   "Wall time of the last PageRank computation")
        .Set(pagerank_timer.ElapsedSeconds());
  }
  CIRANK_ASSIGN_OR_RETURN(
      RwmpModel model,
      RwmpModel::Create(*graph_, std::move(pr.scores), options_.rwmp));
  // Assign into the existing object: scorer_ holds a reference to *model_,
  // which stays valid across the swap.
  *model_ = std::move(model);
  serving_->cache.Clear();
  if (serving_->obs.invalidations != nullptr) {
    serving_->obs.invalidations->Increment();
  }
  return Status::OK();
}

QueryCacheStats CiRankEngine::cache_stats() const {
  QueryCacheStats stats;
  stats.hits = serving_->cache.hits();
  stats.misses = serving_->cache.misses();
  stats.invalidations = serving_->cache.invalidations();
  stats.entries = serving_->cache.size();
  serving_->SyncCacheMetrics(metrics_);
  return stats;
}

}  // namespace cirank
