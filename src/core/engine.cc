#include "core/engine.h"

#include <atomic>
#include <mutex>
#include <sstream>
#include <utility>

#include "core/parallel_search.h"
#include "util/check.h"
#include "util/lru_cache.h"
#include "util/thread_pool.h"

namespace cirank {

namespace {

// Cache values are shared_ptr so a hit can be returned while a concurrent
// Clear() (feedback invalidation) drops the shard's copy.
using CachedAnswers = std::shared_ptr<const std::vector<RankedAnswer>>;

// The cache key must pin down everything the result depends on besides the
// model itself: normalized keywords plus the full search configuration.
// Model changes are handled by invalidation, not by the key.
std::string CacheKey(const Query& query, const SearchOptions& options) {
  std::ostringstream key;
  for (const std::string& k : query.keywords) key << k << ' ';
  key << "|k=" << options.k << "|d=" << options.max_diameter
      << "|x=" << options.max_expansions << "|s=" << options.strict_merge_rule
      << "|b=" << static_cast<const void*>(options.bounds)
      << "|e=" << options.executor << "|t=" << options.num_threads;
  return std::move(key).str();
}

}  // namespace

// Mutable serving-time state, split from the immutable model so the engine
// can stay const-correct: Search() is const yet touches the cache, and
// feedback accumulates across calls.
struct CiRankEngine::Serving {
  Serving(size_t num_nodes, const QueryCacheOptions& cache_options)
      : cache(cache_options.capacity, cache_options.shards),
        feedback(num_nodes) {}

  ShardedLruCache<std::string, CachedAnswers> cache;

  std::mutex feedback_mu;
  FeedbackModel feedback;

  // Incremented around every model read during a search; RebuildFromFeedback
  // refuses to run while nonzero. This is a guard rail against API misuse,
  // not a lock: the caller owns quiescence.
  std::atomic<int64_t> active_searches{0};
};

CiRankEngine::CiRankEngine() = default;
CiRankEngine::CiRankEngine(CiRankEngine&&) noexcept = default;
CiRankEngine& CiRankEngine::operator=(CiRankEngine&&) noexcept = default;
CiRankEngine::~CiRankEngine() = default;

Result<CiRankEngine> CiRankEngine::Build(const Graph& graph,
                                         const CiRankOptions& options) {
  CIRANK_RETURN_IF_ERROR(options.rwmp.Validate());

  CiRankEngine engine;
  engine.graph_ = &graph;
  engine.options_ = options;
  engine.index_ = std::make_unique<InvertedIndex>(graph);

  CIRANK_ASSIGN_OR_RETURN(PageRankResult pr,
                          ComputePageRank(graph, options.pagerank));
  CIRANK_ASSIGN_OR_RETURN(
      RwmpModel model,
      RwmpModel::Create(graph, std::move(pr.scores), options.rwmp));
  engine.model_ = std::make_unique<RwmpModel>(std::move(model));
  engine.scorer_ =
      std::make_unique<TreeScorer>(*engine.model_, *engine.index_);
  engine.serving_ =
      std::make_unique<Serving>(graph.num_nodes(), options.cache);
  return engine;
}

SearchOptions CiRankEngine::EffectiveOptions(
    const SearchOverrides& overrides) const {
  SearchOptions merged = options_.search;
  if (overrides.k.has_value()) merged.k = *overrides.k;
  if (overrides.max_diameter.has_value()) {
    merged.max_diameter = *overrides.max_diameter;
  }
  if (overrides.max_expansions.has_value()) {
    merged.max_expansions = *overrides.max_expansions;
  }
  if (overrides.strict_merge_rule.has_value()) {
    merged.strict_merge_rule = *overrides.strict_merge_rule;
  }
  if (overrides.executor.has_value()) merged.executor = *overrides.executor;
  if (overrides.num_threads.has_value()) {
    merged.num_threads = *overrides.num_threads;
  }
  if (overrides.deadline_ms.has_value()) {
    merged.deadline_ms = *overrides.deadline_ms;
  }
  if (overrides.candidate_budget.has_value()) {
    merged.candidate_budget = *overrides.candidate_budget;
  }
  if (overrides.bounds != nullptr) merged.bounds = overrides.bounds;
  return merged;
}

Result<std::vector<RankedAnswer>> CiRankEngine::Search(
    const Query& query, SearchStats* stats) const {
  return CachedSearch(query, options_.search, /*use_cache=*/true, stats);
}

Result<std::vector<RankedAnswer>> CiRankEngine::Search(
    const Query& query, const SearchOptions& options,
    SearchStats* stats) const {
  serving_->active_searches.fetch_add(1, std::memory_order_acq_rel);
  // Dispatch through the executor registry: options.executor picks the
  // SearchExecutor ("bnb" by default), and the execution pipeline applies
  // the deadline/budget guard and stage accounting uniformly.
  ExecutorEnv env{scorer_.get(), &query, options};
  auto result = ExecuteSearch(env, stats);
  serving_->active_searches.fetch_sub(1, std::memory_order_acq_rel);
  return result;
}

Result<std::vector<RankedAnswer>> CiRankEngine::Search(
    const Query& query, const SearchOverrides& overrides,
    SearchStats* stats) const {
  return CachedSearch(query, EffectiveOptions(overrides), /*use_cache=*/true,
                      stats);
}

Result<std::vector<RankedAnswer>> CiRankEngine::CachedSearch(
    const Query& query, const SearchOptions& options, bool use_cache,
    SearchStats* stats, bool stats_from_cache_ok) const {
  // Deadline- and budget-limited queries are never cached: what they return
  // depends on how far the search got before the guard fired, so a memoized
  // copy is neither reproducible nor necessarily the full answer.
  const bool cacheable = use_cache && serving_->cache.enabled() &&
                         options.deadline_ms <= 0.0 &&
                         options.candidate_budget <= 0;
  std::string key;
  if (cacheable) {
    key = CacheKey(query, options);
    // A cached result carries no fresh counters, so by default a
    // stats-requesting caller is served (and measured) fresh; batch callers
    // opt into hits annotated with the from_cache marker instead.
    if (stats == nullptr || stats_from_cache_ok) {
      if (auto hit = serving_->cache.Get(key); hit.has_value()) {
        if (stats != nullptr) {
          *stats = SearchStats{};
          stats->from_cache = true;
          stats->executor = options.executor;
        }
        return **hit;
      }
    }
  }
  CIRANK_ASSIGN_OR_RETURN(std::vector<RankedAnswer> answers,
                          Search(query, options, stats));
  if (cacheable) {
    serving_->cache.Put(
        std::move(key),
        std::make_shared<const std::vector<RankedAnswer>>(answers));
  }
  return answers;
}

std::vector<Result<std::vector<RankedAnswer>>> CiRankEngine::SearchBatch(
    const std::vector<Query>& queries, const BatchSearchOptions& options,
    std::vector<SearchStats>* stats) const {
  const SearchOptions merged = EffectiveOptions(options.overrides);
  std::vector<Result<std::vector<RankedAnswer>>> results(
      queries.size(),
      Result<std::vector<RankedAnswer>>(
          Status::Internal("batch entry not filled")));
  if (stats != nullptr) stats->assign(queries.size(), SearchStats{});
  if (queries.empty()) return results;

  ThreadPool pool(options.num_threads);
  pool.ParallelFor(queries.size(), [&](size_t i) {
    results[i] = CachedSearch(queries[i], merged, options.use_cache,
                              stats != nullptr ? &(*stats)[i] : nullptr,
                              /*stats_from_cache_ok=*/true);
  });
  return results;
}

Status CiRankEngine::RecordFeedback(const std::vector<NodeId>& matched_nodes,
                                    const std::vector<NodeId>& connector_nodes,
                                    double weight) {
  {
    std::lock_guard<std::mutex> lk(serving_->feedback_mu);
    CIRANK_RETURN_IF_ERROR(
        serving_->feedback.RecordAnswer(matched_nodes, connector_nodes,
                                        weight));
  }
  // Clicks shift what the engine *should* return (once rebuilt), so memoized
  // results are no longer trustworthy snapshots.
  serving_->cache.Clear();
  return Status::OK();
}

Status CiRankEngine::RecordClick(NodeId v, double weight) {
  {
    std::lock_guard<std::mutex> lk(serving_->feedback_mu);
    CIRANK_RETURN_IF_ERROR(serving_->feedback.RecordClick(v, weight));
  }
  serving_->cache.Clear();
  return Status::OK();
}

double CiRankEngine::FeedbackClicks(NodeId v) const {
  std::lock_guard<std::mutex> lk(serving_->feedback_mu);
  if (v >= serving_->feedback.num_nodes()) return 0.0;
  return serving_->feedback.clicks(v);
}

Status CiRankEngine::RebuildFromFeedback(const FeedbackOptions& options) {
  if (serving_->active_searches.load(std::memory_order_acquire) != 0) {
    return Status::FailedPrecondition(
        "RebuildFromFeedback requires quiesced search traffic");
  }
  std::vector<double> teleport;
  {
    std::lock_guard<std::mutex> lk(serving_->feedback_mu);
    CIRANK_ASSIGN_OR_RETURN(teleport,
                            serving_->feedback.TeleportVector(options));
  }
  PageRankOptions pr_options = options_.pagerank;
  pr_options.teleport_vector = std::move(teleport);
  CIRANK_ASSIGN_OR_RETURN(PageRankResult pr,
                          ComputePageRank(*graph_, pr_options));
  CIRANK_ASSIGN_OR_RETURN(
      RwmpModel model,
      RwmpModel::Create(*graph_, std::move(pr.scores), options_.rwmp));
  // Assign into the existing object: scorer_ holds a reference to *model_,
  // which stays valid across the swap.
  *model_ = std::move(model);
  serving_->cache.Clear();
  return Status::OK();
}

QueryCacheStats CiRankEngine::cache_stats() const {
  QueryCacheStats stats;
  stats.hits = serving_->cache.hits();
  stats.misses = serving_->cache.misses();
  stats.invalidations = serving_->cache.invalidations();
  stats.entries = serving_->cache.size();
  return stats;
}

}  // namespace cirank
