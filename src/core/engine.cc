#include "core/engine.h"

namespace cirank {

Result<CiRankEngine> CiRankEngine::Build(const Graph& graph,
                                         const CiRankOptions& options) {
  CIRANK_RETURN_IF_ERROR(options.rwmp.Validate());

  CiRankEngine engine;
  engine.graph_ = &graph;
  engine.options_ = options;
  engine.index_ = std::make_unique<InvertedIndex>(graph);

  CIRANK_ASSIGN_OR_RETURN(PageRankResult pr,
                          ComputePageRank(graph, options.pagerank));
  CIRANK_ASSIGN_OR_RETURN(
      RwmpModel model,
      RwmpModel::Create(graph, std::move(pr.scores), options.rwmp));
  engine.model_ = std::make_unique<RwmpModel>(std::move(model));
  engine.scorer_ =
      std::make_unique<TreeScorer>(*engine.model_, *engine.index_);
  return engine;
}

Result<std::vector<RankedAnswer>> CiRankEngine::Search(
    const Query& query, SearchStats* stats) const {
  return Search(query, options_.search, stats);
}

Result<std::vector<RankedAnswer>> CiRankEngine::Search(
    const Query& query, const SearchOptions& options,
    SearchStats* stats) const {
  return BranchAndBoundSearch(*scorer_, query, options, stats);
}

}  // namespace cirank
