// Baseline answer generators:
//  * NaiveSearch -- the paper's naive algorithm (Sec. IV-A): breadth-first
//    expansion from every non-free node to radius ceil(D/2), followed by
//    root-centric combination of shortest paths into answer trees.
//  * ExhaustiveSearch -- complete enumeration of all answer trees up to a
//    node-count limit. Exponential; used as ground truth in property tests
//    (Theorem 1: branch-and-bound must match it) and on micro graphs.
#ifndef CIRANK_CORE_NAIVE_SEARCH_H_
#define CIRANK_CORE_NAIVE_SEARCH_H_

#include <memory>

#include "core/bnb_search.h"
#include "core/execution.h"
#include "core/scorer.h"

namespace cirank {

struct EnumerateOptions {
  uint32_t max_diameter = 4;
  // Caps on combinatorial explosion: maximum keyword-source combinations
  // examined per root, and maximum shortest-path variants per source.
  int64_t max_combinations_per_root = 4096;
  int64_t max_paths_per_source = 16;
  // Stop after this many distinct answers (0 = unlimited).
  int64_t max_answers = 0;
};

// Scoring-free answer enumeration via the naive algorithm's BFS + path
// combination. Used both by NaiveSearch and as the *neutral* candidate pool
// generator for the effectiveness experiments (every ranking system scores
// the same pool, so no system's own search biases the comparison).
[[nodiscard]] Result<std::vector<Jtt>> EnumerateAnswers(const Graph& graph,
                                          const InvertedIndex& index,
                                          const Query& query,
                                          const EnumerateOptions& options);

struct NaiveSearchOptions {
  int k = 10;
  uint32_t max_diameter = 4;
  int64_t max_combinations_per_root = 4096;
  int64_t max_paths_per_source = 16;
};

// Factory for the "naive" executor (registered in ExecutorRegistry::Global):
// Prepare enumerates the answer pool, Expand scores it under the
// deadline/budget guard, Emit ranks. Enumeration caps take their defaults
// from NaiveSearchOptions; k and max_diameter come from
// ExecutorEnv::options. Fails on empty queries, queries with more than
// Query::kMaxKeywords keywords, or non-positive k.
[[nodiscard]] Result<std::unique_ptr<SearchExecutor>> MakeNaiveExecutor(
    const ExecutorEnv& env);

// DEPRECATED for application code: prefer CiRankEngine::Search with
// SearchOverrides().WithExecutor("naive") — the ExecutorRegistry path adds
// the deadline/budget guard, caching, metrics, and tracing. Kept for the
// soundness tests and baseline benches that need the raw algorithm.
[[nodiscard]] Result<std::vector<RankedAnswer>> NaiveSearch(const TreeScorer& scorer,
                                              const Query& query,
                                              const NaiveSearchOptions& options,
                                              SearchStats* stats = nullptr);

struct ExhaustiveSearchOptions {
  int k = 10;
  uint32_t max_diameter = 4;
  // Hard limit on answer-tree size in nodes; the enumeration is exponential
  // in this limit.
  size_t max_nodes = 8;
};

[[nodiscard]] Result<std::vector<RankedAnswer>> ExhaustiveSearch(
    const TreeScorer& scorer, const Query& query,
    const ExhaustiveSearchOptions& options);

}  // namespace cirank

#endif  // CIRANK_CORE_NAIVE_SEARCH_H_
