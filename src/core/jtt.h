// Joined tuple trees (JTTs): the answer form of Definition 3. A JTT is a
// subtree of the data graph whose leaves are keyword-matching nodes (and
// whose root matches a keyword when it has only one child).
#ifndef CIRANK_CORE_JTT_H_
#define CIRANK_CORE_JTT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "text/inverted_index.h"
#include "util/status.h"

namespace cirank {

// True when `nodes` can be matched to *distinct* query keywords they
// contain (bipartite matching). This is the core of Definition 3's "leaves
// come from R" condition and of the search's candidate-viability pruning.
bool MatchableToDistinctKeywords(const std::vector<NodeId>& nodes,
                                 const Query& query,
                                 const InvertedIndex& index);

// An undirected tree over graph nodes, stored as a rooted edge list with a
// cached index-based adjacency (trees are tiny and immutable, and the
// search scores millions of them, so tree operations avoid heap-heavy
// containers). Two JTTs with the same node/edge sets are the same answer
// regardless of the root used while assembling them; CanonicalKey()
// reflects that.
class Jtt {
 public:
  Jtt() = default;

  // Single-node tree.
  explicit Jtt(NodeId single) : root_(single), nodes_{single}, adjacency_{{}} {}

  // Builds a tree from a root plus (parent, child) edges. Fails when the
  // edges do not form a tree rooted at `root` or reference duplicate nodes.
  [[nodiscard]] static Result<Jtt> Create(NodeId root,
                            std::vector<std::pair<NodeId, NodeId>> edges);

  NodeId root() const { return root_; }
  const std::vector<NodeId>& nodes() const { return nodes_; }  // sorted
  const std::vector<std::pair<NodeId, NodeId>>& edges() const {
    return edges_;
  }

  size_t size() const { return nodes_.size(); }
  bool contains(NodeId v) const;

  // Position of v in nodes(), or nodes().size() when absent. O(log n).
  size_t IndexOf(NodeId v) const;

  // Indices (into nodes()) of the tree neighbors of the node at `index`.
  const std::vector<uint32_t>& NeighborIndices(size_t index) const {
    return adjacency_[index];
  }

  // Undirected neighbors of v within the tree (by node id).
  std::vector<NodeId> TreeNeighbors(NodeId v) const;

  // Tree degree of v (0 when v is not in the tree).
  size_t DegreeOf(NodeId v) const;

  // Longest path length (in edges) between any two tree nodes.
  uint32_t Diameter() const;

  // Longest path length (in edges) from v to any tree node.
  uint32_t EccentricityOf(NodeId v) const;

  // Unique nodes on the undirected tree path from `a` to `b`, inclusive.
  std::vector<NodeId> PathBetween(NodeId a, NodeId b) const;

  // True when every edge exists in `graph` (in both directions, as the FK
  // modeling guarantees).
  bool EdgesExistIn(const Graph& graph) const;

  // Definition 3 check: the degree-<=1 nodes are matchable to distinct
  // query keywords.
  bool IsReduced(const Query& query, const InvertedIndex& index) const;

  // True when the tree nodes jointly cover every query keyword.
  bool CoversAllKeywords(const Query& query, const InvertedIndex& index) const;

  // Root-independent identity: sorted node list plus sorted undirected
  // edge list.
  std::string CanonicalKey() const;

  // Canonical representative of this tree's undirected identity: rooted at
  // the smallest node id, edges emitted in BFS order with neighbors visited
  // in ascending id. Two Jtts with equal CanonicalKey() canonicalize to
  // byte-identical objects, so downstream floating-point work (scoring,
  // message propagation) is independent of the derivation order that built
  // the tree — the parallel search relies on this for exactness.
  Jtt Canonicalized() const;

  // Human-readable rendering using node text, e.g. for example programs.
  std::string ToString(const Graph& graph) const;

 private:
  friend Status ValidateJtt(const Jtt& tree);
  friend struct JttTestPeer;  // test-only corruption hook

  // BFS distances (in tree edges) from the node at `start_index`.
  void DistancesFrom(size_t start_index, std::vector<uint32_t>* dist) const;

  NodeId root_ = kInvalidNode;
  std::vector<NodeId> nodes_;                     // sorted, unique
  std::vector<std::pair<NodeId, NodeId>> edges_;  // (parent, child)
  std::vector<std::vector<uint32_t>> adjacency_;  // parallel to nodes_
};

// Structural audit of a Jtt: sorted/unique node list, root membership,
// |edges| == |nodes| - 1, edge endpoints in the node set, adjacency mirroring
// the edge list, and every node reachable from the root (which, with the
// edge count, certifies acyclicity). Jtt::Create re-checks this in debug
// builds; tests drive the failure paths through JttTestPeer.
[[nodiscard]] Status ValidateJtt(const Jtt& tree);

// Full Definition-3 audit: structure plus answer-shape conditions — the tree
// covers every query keyword and its non-free nodes (undirected degree <= 1)
// are matchable to distinct keywords (IsReduced).
[[nodiscard]] Status ValidateJtt(const Jtt& tree, const Query& query,
                                 const InvertedIndex& index);

}  // namespace cirank

#endif  // CIRANK_CORE_JTT_H_
