// The Random Walk with Message Passing (RWMP) model of Sec. III. This class
// holds the per-node importance values (from PageRank), the derived
// dampening rates (Eq. 2), and the message-emission formula; the tree scorer
// performs the actual message propagation on top of it.
#ifndef CIRANK_CORE_RWMP_H_
#define CIRANK_CORE_RWMP_H_

#include <vector>

#include "graph/graph.h"
#include "text/inverted_index.h"
#include "util/status.h"

namespace cirank {

struct RwmpParams {
  // Probability that a surfer keeps the messages in one in-node talk step.
  // The minimum possible dampening rate. Paper default: 0.15 (Sec. VI-B).
  double alpha = 0.15;
  // Talk-group size g; controls how quickly the number of informed surfers
  // grows, hence the log base in Eq. 2. Paper default: 20.
  double g = 20.0;

  [[nodiscard]] Status Validate() const;
};

// Immutable per-query-independent model state. Build once per (graph,
// importance, params) triple and share across queries.
class RwmpModel {
 public:
  // `importance` must be a positive probability vector over graph nodes
  // (typically PageRankResult::scores).
  [[nodiscard]] static Result<RwmpModel> Create(const Graph& graph,
                                  std::vector<double> importance,
                                  const RwmpParams& params = {});

  const Graph& graph() const { return *graph_; }
  const RwmpParams& params() const { return params_; }

  double importance(NodeId v) const { return importance_[v]; }
  const std::vector<double>& importance_vector() const { return importance_; }

  // Dampening rate d_i = 1 - (1-alpha)^(1 + log_g(p_i / p_min)), Eq. 2.
  // Monotonically increasing in p_i; always in [alpha, 1).
  double dampening(NodeId v) const { return dampening_[v]; }
  const std::vector<double>& dampening_vector() const { return dampening_; }

  // Largest dampening rate over all nodes (used by upper bounds).
  double max_dampening() const { return max_dampening_; }

  double p_min() const { return p_min_; }

  // Total number of random surfers t = 1 / p_min.
  double total_surfers() const { return total_surfers_; }

  // Message emission count r_ii = t * p_i * |v_i ∩ Q| / |v_i| (Sec. III-C.1).
  // Zero for nodes with no text or no matching token.
  double Emission(NodeId v, const Query& query,
                  const InvertedIndex& index) const;

 private:
  RwmpModel() = default;

  const Graph* graph_ = nullptr;
  RwmpParams params_;
  std::vector<double> importance_;
  std::vector<double> dampening_;
  double p_min_ = 0.0;
  double total_surfers_ = 0.0;
  double max_dampening_ = 0.0;
};

}  // namespace cirank

#endif  // CIRANK_CORE_RWMP_H_
