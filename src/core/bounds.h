// Upper bounds for branch-and-bound candidates (Sec. IV-B). The bound
// combines the paper's complete estimate (best achievable score once the
// missing keywords are supplied through the root) and potential estimate
// (best contribution of additional non-free nodes appended to a complete
// tree), constructed so that ub(C) >= score(T) for every answer tree T
// derivable from C (Lemma 1):
//   * growing a tree adds edges only at the current root, so split fractions
//     at non-root nodes are final and flows between existing nodes can only
//     shrink;
//   * a node's score is a min over message types, so adding sources can only
//     lower it;
//   * outside sources must route through the root, so their flows are
//     bounded by emission x transmission-bound x in-tree transmission.
#ifndef CIRANK_CORE_BOUNDS_H_
#define CIRANK_CORE_BOUNDS_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "core/candidate.h"
#include "core/scorer.h"
#include "graph/traversal.h"

namespace cirank {

// Pairwise pre-computed bounds (Sec. V). The default implementation knows
// nothing and returns the trivially admissible values; the index module
// provides tighter ones (naive and star indexes).
class PairwiseBoundProvider {
 public:
  virtual ~PairwiseBoundProvider() = default;

  // Upper bound on the product of dampening factors over the interior nodes
  // of any directed path from `from` to `to` (the complement of the paper's
  // "minimal loss" LS). Must be >= the true maximum; 1.0 when unknown.
  virtual double TransmissionBound(NodeId from, NodeId to) const {
    (void)from;
    (void)to;
    return 1.0;
  }

  // Lower bound on the hop distance from `from` to `to`; 0 when unknown and
  // kUnreachable when provably unreachable.
  virtual uint32_t DistanceLowerBound(NodeId from, NodeId to) const {
    (void)from;
    (void)to;
    return 0;
  }
};

// Computes ub(C) = max(ce(C), pe(C)) for candidates of one query. Holds
// per-query caches; not thread-safe.
class UpperBoundCalculator {
 public:
  // `bounds` may be null (no index); all references must outlive the
  // calculator. `max_diameter` is the answer-tree diameter limit D.
  UpperBoundCalculator(const TreeScorer& scorer, const Query& query,
                       uint32_t max_diameter,
                       const PairwiseBoundProvider* bounds);

  // Upper bound on the score of any answer tree derivable from `c`.
  // Returns 0 when some missing keyword provably cannot be supplied.
  double UpperBound(const Candidate& c) const;

  KeywordMask all_keywords_mask() const { return all_mask_; }

  // Number of UpperBound() evaluations so far (StageStats::bound_calls).
  int64_t calls() const { return calls_; }

 private:
  struct SourceInfo {
    NodeId node;
    double emission;
  };

  // Max over graph out-neighbors b of r of dampening(b); cached per root.
  double NeighborDampening(NodeId r) const;

  // Max over x in En(k) of emission(x) * (bound on transmission x -> r),
  // restricted to x that can still fit within the diameter limit given the
  // root's eccentricity inside the candidate.
  double AttachBound(size_t keyword_idx, NodeId r, uint32_t root_ecc) const;

  // Max over x in En(Q) of (bound on transmission r -> x) * dampening(x).
  double OutsideBound(NodeId r, uint32_t root_ecc) const;

  const TreeScorer* scorer_;
  const Query* query_;
  uint32_t max_diameter_;
  const PairwiseBoundProvider* bounds_;  // nullable
  KeywordMask all_mask_ = 0;

  // En(k) with emissions, per keyword index.
  std::vector<std::vector<SourceInfo>> keyword_sources_;

  mutable std::map<NodeId, double> neighbor_damp_cache_;
  // Only used when bounds_ == nullptr (no distance information, so the
  // value does not depend on the candidate).
  mutable std::map<std::pair<size_t, NodeId>, double> attach_cache_;
  mutable std::map<NodeId, double> outside_cache_;
  mutable int64_t calls_ = 0;
};

}  // namespace cirank

#endif  // CIRANK_CORE_BOUNDS_H_
