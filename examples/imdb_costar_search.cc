// IMDB co-star search with star-index acceleration: the "Bloom Wood
// Mortensen" scenario of Sec. II-B.2. Finds the movies connecting multiple
// actors, compares plain branch-and-bound against the star-index-assisted
// search, and prints the speedup.
//
//   $ ./build/examples/imdb_costar_search
#include <cstdio>

#include "core/engine.h"
#include "datasets/imdb_gen.h"
#include "datasets/query_gen.h"
#include "index/star_index.h"
#include "util/timer.h"

using namespace cirank;

int main() {
  ImdbGenOptions gen;
  gen.num_movies = 800;
  gen.num_actors = 1000;
  gen.num_actresses = 500;
  gen.num_directors = 150;
  gen.num_producers = 100;
  gen.num_companies = 50;
  gen.seed = 31;
  auto dataset = BuildImdbDataset(gen);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset generation failed\n");
    return 1;
  }
  std::printf("synthetic IMDB: %zu nodes, %zu edges\n",
              dataset->graph.num_nodes(), dataset->graph.num_edges());

  auto engine = CiRankEngine::Builder(dataset->graph).Build();
  if (!engine.ok()) {
    std::fprintf(stderr, "engine build failed\n");
    return 1;
  }

  Timer build_timer;
  auto star_index = StarIndex::Build(dataset->graph, engine->model());
  if (!star_index.ok()) {
    std::fprintf(stderr, "star index build failed\n");
    return 1;
  }
  std::printf("star index over %zu movie nodes built in %.2f s (%.1f MiB)\n",
              star_index->num_star_nodes(), build_timer.ElapsedSeconds(),
              star_index->MemoryBytes() / (1024.0 * 1024.0));

  // Three co-stars of one movie, queried by name.
  QueryGenOptions qopts;
  qopts.num_queries = 5;
  qopts.frac_two_nonadjacent = 0.0;
  qopts.frac_three_plus = 1.0;
  qopts.ambiguous_prob = 0.0;
  qopts.seed = 32;
  auto queries = GenerateQueries(*dataset, qopts);
  if (!queries.ok() || queries->empty()) {
    std::fprintf(stderr, "query generation failed\n");
    return 1;
  }

  for (const LabeledQuery& lq : *queries) {
    std::string rendered;
    for (const std::string& k : lq.query.keywords) {
      rendered += rendered.empty() ? k : " " + k;
    }
    std::printf("\nquery: \"%s\"\n", rendered.c_str());

    SearchOptions opts;
    opts.k = 3;
    opts.max_diameter = 4;
    opts.max_expansions = 100000;

    Timer t;
    // Timed for the plain-vs-indexed comparison; the answers themselves are
    // only printed from the indexed run below.
    CIRANK_IGNORE_ERROR(engine->Search(lq.query, opts));
    const double plain_s = t.ElapsedSeconds();

    opts.bounds = &star_index.value();
    t.Reset();
    auto indexed = engine->Search(lq.query, opts);
    const double indexed_s = t.ElapsedSeconds();

    if (!indexed.ok() || indexed->empty()) {
      std::printf("  (no answers)\n");
      continue;
    }
    std::printf("  plain: %.3f s, with star index: %.3f s (%.1fx)\n",
                plain_s, indexed_s,
                indexed_s > 0 ? plain_s / indexed_s : 0.0);
    for (size_t i = 0; i < indexed->size(); ++i) {
      const RankedAnswer& a = (*indexed)[i];
      std::printf("  #%zu score=%.4g %s\n", i + 1, a.score,
                  a.tree.ToString(dataset->graph).c_str());
    }
  }
  return 0;
}
