// DBLP co-author search: the paper's motivating scenario (Sec. I) on a
// synthetic DBLP-schema dataset. Queries two author names and shows that
// CI-Rank surfaces the best-cited connecting papers first, while an
// IR-style ranking cannot tell the connecting papers apart.
//
//   $ ./build/examples/dblp_coauthor_search
#include <cstdio>

#include "baselines/spark.h"
#include "core/engine.h"
#include "datasets/dblp_gen.h"
#include "datasets/query_gen.h"

using namespace cirank;

int main() {
  DblpGenOptions gen;
  gen.num_papers = 1200;
  gen.num_authors = 800;
  gen.num_conferences = 16;
  gen.seed = 12;
  auto dataset = BuildDblpDataset(gen);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset generation failed\n");
    return 1;
  }
  std::printf("synthetic DBLP: %zu nodes, %zu edges\n",
              dataset->graph.num_nodes(), dataset->graph.num_edges());

  auto engine = CiRankEngine::Builder(dataset->graph).Build();
  if (!engine.ok()) {
    std::fprintf(stderr, "engine build failed\n");
    return 1;
  }

  // Pick a pair of co-authors of some paper to play Papakonstantinou/Ullman.
  QueryGenOptions qopts;
  qopts.num_queries = 4;
  qopts.frac_two_nonadjacent = 1.0;
  qopts.frac_three_plus = 0.0;
  qopts.ambiguous_prob = 0.0;
  qopts.seed = 99;
  auto queries = GenerateQueries(*dataset, qopts);
  if (!queries.ok() || queries->empty()) {
    std::fprintf(stderr, "query generation failed\n");
    return 1;
  }

  SparkScorer spark(engine->index());
  for (const LabeledQuery& lq : *queries) {
    std::string rendered;
    for (const std::string& k : lq.query.keywords) {
      rendered += rendered.empty() ? k : " " + k;
    }
    std::printf("\nquery: \"%s\"\n", rendered.c_str());

    SearchOptions opts;
    opts.k = 3;
    opts.max_diameter = 3;
    opts.max_expansions = 30000;
    auto answers = engine->Search(lq.query, opts);
    if (!answers.ok() || answers->empty()) {
      std::printf("  (no answers)\n");
      continue;
    }
    for (size_t i = 0; i < answers->size(); ++i) {
      const RankedAnswer& a = (*answers)[i];
      std::printf("  #%zu ci=%.4g spark=%.3f  %s\n", i + 1, a.score,
                  spark.Score(a.tree, lq.query),
                  a.tree.ToString(dataset->graph).c_str());
    }
  }

  std::printf("\nNote how answers connected through heavily cited papers"
              " rank first under CI-Rank while their SPARK scores are flat"
              " or even prefer shorter titles.\n");
  return 0;
}
