// Ranking shootout: runs CI-Rank, SPARK, DISCOVER2, and BANKS over the same
// candidate answers on the paper's hand-built motivating examples and
// prints each system's preferred answer, making the deficiencies of
// Sec. II-B tangible.
//
//   $ ./build/examples/ranking_shootout
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "datasets/micro_graphs.h"
#include "eval/rankers.h"

using namespace cirank;

namespace {

void Shootout(const char* title, const CiRankEngine& engine,
              const Query& query, const std::vector<Jtt>& candidates,
              const std::vector<const Ranker*>& rankers) {
  const Graph& graph = engine.graph();
  std::printf("\n=== %s ===\n", title);
  std::string rendered;
  for (const std::string& k : query.keywords) {
    rendered += rendered.empty() ? k : " " + k;
  }
  std::printf("query: \"%s\"\n", rendered.c_str());
  for (const Ranker* r : rankers) {
    size_t best = 0;
    double best_score = -1e300;
    for (size_t i = 0; i < candidates.size(); ++i) {
      const double s = r->ScoreAnswer(candidates[i], query);
      if (s > best_score) {
        best_score = s;
        best = i;
      }
    }
    std::printf("  %-12s prefers: %s\n", std::string(r->name()).c_str(),
                candidates[best].ToString(graph).c_str());
  }
  // End-to-end check: let the engine *search* (not just re-rank the
  // hand-built candidates), using the fluent per-call overrides rather
  // than a direct BranchAndBoundSearch call — the executor registry picks
  // the algorithm and the run lands in the engine's metrics.
  auto found = engine.Search(query, SearchOverrides().WithK(1));
  if (found.ok() && !found->empty()) {
    std::printf("  %-12s returns: %s\n", "engine(bnb)",
                (*found)[0].tree.ToString(graph).c_str());
  }
}

std::vector<std::unique_ptr<Ranker>> BuildRankers(
    const CiRankEngine& engine, const std::vector<const char*>& names) {
  std::vector<std::unique_ptr<Ranker>> out;
  for (const char* name : names) {
    auto r = MakeEvalRanker(name, engine.scorer());
    if (!r.ok()) {
      std::fprintf(stderr, "ranker %s: %s\n", name,
                   r.status().ToString().c_str());
      std::exit(1);
    }
    out.push_back(std::move(r).value());
  }
  return out;
}

std::vector<const Ranker*> Views(
    const std::vector<std::unique_ptr<Ranker>>& owned) {
  std::vector<const Ranker*> out;
  for (const auto& r : owned) out.push_back(r.get());
  return out;
}

}  // namespace

int main() {
  // --- TSIMMIS example ---
  {
    TsimmisExample ex = BuildTsimmisExample();
    auto engine = CiRankEngine::Builder(ex.dataset.graph).Build();
    if (!engine.ok()) return 1;
    Query q = Query::MustParse("papakonstantinou ullman");
    std::vector<Jtt> candidates{
        Jtt::Create(ex.paper_a, {{ex.paper_a, ex.papakonstantinou},
                                 {ex.paper_a, ex.ullman}})
            .value(),
        Jtt::Create(ex.paper_b, {{ex.paper_b, ex.papakonstantinou},
                                 {ex.paper_b, ex.ullman}})
            .value()};
    auto rankers = BuildRankers(*engine, {"rwmp", "spark", "discover2",
                                          "banks"});
    Shootout("TSIMMIS papers (Fig. 2): 7 vs 38 citations", *engine, q,
             candidates, Views(rankers));
  }

  // --- Co-star example ---
  {
    CostarExample ex = BuildCostarExample();
    auto engine = CiRankEngine::Builder(ex.dataset.graph).Build();
    if (!engine.ok()) return 1;
    Query q = Query::MustParse("bloom wood mortensen");
    std::vector<Jtt> candidates{
        Jtt::Create(ex.bloom, {{ex.bloom, ex.popular_movie},
                               {ex.popular_movie, ex.wood},
                               {ex.popular_movie, ex.mortensen}})
            .value(),
        Jtt::Create(ex.bloom, {{ex.bloom, ex.obscure_movie},
                               {ex.obscure_movie, ex.wood},
                               {ex.obscure_movie, ex.mortensen}})
            .value()};
    auto rankers = BuildRankers(*engine, {"rwmp", "spark", "discover2",
                                          "banks"});
    Shootout("Co-stars (Fig. 3): popular vs obscure connecting movie", *engine,
             q, candidates, Views(rankers));
  }

  // --- Free-node domination ---
  {
    FreeNodeDominationExample ex = BuildFreeNodeDominationExample();
    auto engine = CiRankEngine::Builder(ex.dataset.graph).Build();
    if (!engine.ok()) return 1;
    Query q = Query::MustParse("wilson cruz");
    std::vector<Jtt> candidates{
        Jtt(ex.wilson_cruz),
        Jtt::Create(ex.charlie_wilsons_war,
                    {{ex.charlie_wilsons_war, ex.tom_hanks},
                     {ex.tom_hanks, ex.tribute},
                     {ex.tribute, ex.penelope_cruz}})
            .value()};
    auto rankers = BuildRankers(*engine, {"rwmp", "avg-all-importance"});
    Shootout("Free-node domination (Fig. 4): \"wilson cruz\"", *engine, q,
             candidates, Views(rankers));
  }

  std::printf("\nCI-Rank picks the intended answer in every scenario.\n");
  return 0;
}
