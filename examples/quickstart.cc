// Quickstart: build a tiny bibliography graph by hand, stand up a
// CiRankEngine, and run a keyword query. Demonstrates the minimal public
// API surface: Schema/GraphBuilder -> CiRankEngine::Builder -> Search.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "core/engine.h"

using namespace cirank;

int main() {
  // 1. Describe the schema: papers and authors, connected by authorship
  //    foreign keys (one edge type per direction, as in the paper's model).
  Schema schema;
  RelationId paper = schema.AddRelation("Paper");
  RelationId author = schema.AddRelation("Author");
  EdgeTypeId writes = schema.AddEdgeType("writes", author, paper, 1.0);
  EdgeTypeId written_by = schema.AddEdgeType("written_by", paper, author, 1.0);
  EdgeTypeId cites = schema.AddEdgeType("cites", paper, paper, 0.5);
  EdgeTypeId cited_by = schema.AddEdgeType("cited_by", paper, paper, 0.1);

  // 2. Load tuples as graph nodes and foreign keys as edges.
  GraphBuilder builder(schema);
  NodeId alice = builder.AddNode(author, "alice zhang");
  NodeId bob = builder.AddNode(author, "bob keller");
  NodeId famous = builder.AddNode(paper, "a very influential survey");
  NodeId obscure = builder.AddNode(paper, "an early workshop note");

  for (NodeId p : {famous, obscure}) {
    CIRANK_CHECK_OK(builder.AddBidirectionalEdge(alice, p, writes, written_by));
    CIRANK_CHECK_OK(builder.AddBidirectionalEdge(bob, p, writes, written_by));
  }
  // The survey is cited by eight other papers; the note by one.
  for (int i = 0; i < 8; ++i) {
    NodeId citer = builder.AddNode(paper, "follow up " + std::to_string(i));
    CIRANK_CHECK_OK(
        builder.AddBidirectionalEdge(citer, famous, cites, cited_by));
  }
  NodeId lone_citer = builder.AddNode(paper, "another follow up");
  CIRANK_CHECK_OK(
      builder.AddBidirectionalEdge(lone_citer, obscure, cites, cited_by));

  Graph graph = builder.Finalize();

  // 3. Build the engine (inverted index + PageRank + RWMP model).
  auto engine = CiRankEngine::Builder(graph).Build();
  if (!engine.ok()) {
    std::fprintf(stderr, "engine build failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }

  // 4. Ask which papers connect Alice and Bob. CI-Rank prefers the
  //    well-cited survey because its node importance is higher. Per-call
  //    tweaks go through the fluent SearchOverrides builder, merged over
  //    the engine's defaults (and still served from the query cache).
  Query query = Query::MustParse("alice bob");
  auto answers =
      engine->Search(query, SearchOverrides().WithK(3).WithMaxDiameter(2));
  if (!answers.ok()) {
    std::fprintf(stderr, "search failed: %s\n",
                 answers.status().ToString().c_str());
    return 1;
  }

  std::printf("query: \"alice bob\" -- top %zu answers\n", answers->size());
  for (size_t i = 0; i < answers->size(); ++i) {
    const RankedAnswer& a = (*answers)[i];
    std::printf("  #%zu  score=%.4f  %s\n", i + 1, a.score,
                a.tree.ToString(graph).c_str());
  }
  std::printf("\nthe tree through \"a very influential survey\" ranks first"
              " -- collective importance at work.\n");

  // 5. Every engine call is instrumented: dump the metrics the two lines
  //    above produced (query counters, per-stage latency histograms, ...).
  std::printf("\n--- metrics (Prometheus exposition) ---\n%s",
              engine->metrics()->RenderPrometheus().c_str());
  return 0;
}
