// Interactive keyword-search CLI over a synthetic or saved database graph.
//
//   $ ./build/examples/cirank_cli --dataset imdb --k 5 --diameter 4
//   > tom hanks
//   #1 score=...  JTT(...)
//
// Options:
//   --dataset imdb|dblp     generate a synthetic dataset (default imdb)
//   --load PATH             load a graph saved with SaveGraphToFile instead
//   --save PATH             save the generated graph and exit
//   --scale S               generator scale factor (default 0.25)
//   --k N                   answers per query (default 5)
//   --diameter D            answer-tree diameter limit (default 4)
//   --no-index              disable the star index
//   --threads N             parallel search workers (default 1 = serial);
//                           N > 1 selects the "parallel" executor, which
//                           shares each query's candidate frontier across a
//                           worker pool and returns identical answers
//   --executor NAME         route queries through a registered executor:
//                           bnb (default), parallel, naive, banks,
//                           bidirectional, spark, discover2
//   --ranker NAME           score answers with a registered ranker: rwmp
//                           (default), rwmp_x_text, spark, banks,
//                           discover2, or an ablation ranker
//   --order-by SPEC         presentation order over the top-k, e.g.
//                           "score desc, size asc" (fields: score, root,
//                           external_key, relation, size, text)
//   --deadline-ms X         per-query wall-clock deadline; on expiry the
//                           search stops and returns its best-so-far
//                           answers, marked "truncated" in the stats line
//   --cache N               LRU query-result cache capacity (default 1024;
//                           0 disables). With the cache on, repeating a
//                           query is served memoized and the CLI reports
//                           cache counters instead of expansion stats;
//                           --threads > 1, --deadline-ms, and non-default
//                           --executor report fresh stage stats instead
//   --shards N              scatter-gather shard count (default 1; results
//                           are byte-identical for any N — DESIGN.md §16)
//   --partitioner NAME      shard partitioner: hash|star (default hash)
//   --metrics-out PATH      on exit, dump the engine's metrics registry to
//                           PATH: Prometheus text exposition, or JSON when
//                           PATH ends in ".json"; "-" writes to stdout
//   --trace-out PATH        record a TraceSpan per query stage and write
//                           Chrome trace_event JSON to PATH on exit (open
//                           in chrome://tracing or Perfetto); "-" = stdout
// Queries are read line by line from stdin; empty line or EOF quits.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "baselines/baseline_executors.h"
#include "core/engine.h"
#include "core/order_by.h"
#include "core/ranker.h"
#include "graph/serialize.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "shard/builder.h"
#include "util/timer.h"

using namespace cirank;

namespace {

struct CliOptions {
  std::string dataset = "imdb";
  std::string load_path;
  std::string save_path;
  double scale = 0.25;
  int k = 5;
  uint32_t diameter = 4;
  bool use_index = true;
  int threads = 1;
  std::string executor;  // empty = engine default ("bnb" / "parallel")
  std::string ranker;    // empty = engine default ("rwmp")
  std::string order_by;  // empty = score order
  double deadline_ms = 0.0;
  size_t cache_capacity = 1024;
  uint32_t num_shards = 1;
  std::string partitioner = "hash";
  std::string metrics_out;  // empty = off; "-" = stdout; *.json = JSON
  std::string trace_out;    // empty = off; "-" = stdout
};

// Writes `content` to `path`, with "-" meaning stdout. Returns false (and
// prints the reason) on I/O failure.
bool WriteTextOutput(const std::string& path, const std::string& content,
                     const char* what) {
  if (path == "-") {
    std::fwrite(content.data(), 1, content.size(), stdout);
    return true;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot open %s file %s\n", what, path.c_str());
    return false;
  }
  out << content;
  return static_cast<bool>(out);
}

bool EndsWith(const std::string& s, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

bool ParseArgs(int argc, char** argv, CliOptions* opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--dataset") {
      const char* v = next();
      if (!v) return false;
      opts->dataset = v;
    } else if (arg == "--load") {
      const char* v = next();
      if (!v) return false;
      opts->load_path = v;
    } else if (arg == "--save") {
      const char* v = next();
      if (!v) return false;
      opts->save_path = v;
    } else if (arg == "--scale") {
      const char* v = next();
      if (!v) return false;
      opts->scale = std::atof(v);
    } else if (arg == "--k") {
      const char* v = next();
      if (!v) return false;
      opts->k = std::atoi(v);
    } else if (arg == "--diameter") {
      const char* v = next();
      if (!v) return false;
      opts->diameter = static_cast<uint32_t>(std::atoi(v));
    } else if (arg == "--no-index") {
      opts->use_index = false;
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return false;
      opts->threads = std::atoi(v);
      if (opts->threads < 1) {
        std::fprintf(stderr, "--threads must be >= 1\n");
        return false;
      }
    } else if (arg == "--executor") {
      const char* v = next();
      if (!v) return false;
      opts->executor = v;
    } else if (arg == "--ranker") {
      const char* v = next();
      if (!v) return false;
      opts->ranker = v;
    } else if (arg == "--order-by") {
      const char* v = next();
      if (!v) return false;
      opts->order_by = v;
    } else if (arg == "--deadline-ms") {
      const char* v = next();
      if (!v) return false;
      opts->deadline_ms = std::atof(v);
      if (opts->deadline_ms < 0.0) {
        std::fprintf(stderr, "--deadline-ms must be >= 0\n");
        return false;
      }
    } else if (arg == "--cache") {
      const char* v = next();
      if (!v) return false;
      const long long n = std::atoll(v);
      if (n < 0) {
        std::fprintf(stderr, "--cache must be >= 0\n");
        return false;
      }
      opts->cache_capacity = static_cast<size_t>(n);
    } else if (arg == "--shards") {
      const char* v = next();
      if (!v) return false;
      const long long n = std::atoll(v);
      if (n < 1 || n > 256) {
        std::fprintf(stderr, "--shards must be in [1, 256]\n");
        return false;
      }
      opts->num_shards = static_cast<uint32_t>(n);
    } else if (arg == "--partitioner") {
      const char* v = next();
      if (!v) return false;
      opts->partitioner = v;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (!v) return false;
      opts->metrics_out = v;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (!v) return false;
      opts->trace_out = v;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  if (!ParseArgs(argc, argv, &opts)) return 1;

  Timer setup_timer;

  // Make every registered executor addressable via --executor.
  if (Status st = RegisterBaselineExecutors(); !st.ok()) {
    std::fprintf(stderr, "executor registration failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  if (!opts.executor.empty() &&
      !ExecutorRegistry::Global().Contains(opts.executor)) {
    std::fprintf(stderr, "unknown --executor %s; registered:",
                 opts.executor.c_str());
    for (const std::string& name : ExecutorRegistry::Global().Names()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 1;
  }
  if (!opts.ranker.empty() &&
      !RankerRegistry::Global().Contains(opts.ranker)) {
    std::fprintf(stderr, "unknown --ranker %s; registered:",
                 opts.ranker.c_str());
    for (const std::string& name : RankerRegistry::Global().Names()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 1;
  }
  if (!opts.order_by.empty()) {
    if (auto keys = ParseOrderBy(opts.order_by); !keys.ok()) {
      std::fprintf(stderr, "bad --order-by: %s\n",
                   keys.status().ToString().c_str());
      return 1;
    }
  }

  // A CLI-local registry keeps the dump limited to this process's serving
  // metrics; the trace collector is wired in only when requested.
  obs::MetricsRegistry metrics;
  obs::TraceCollector trace;
  QueryCacheOptions cache;
  cache.capacity = opts.cache_capacity;
  shard::EngineBuilder engine_builder;
  engine_builder.WithDataset(opts.dataset)
      .WithScale(opts.scale)
      .WithCache(cache)
      .WithMetrics(&metrics)
      .WithStarIndex(opts.use_index)
      .WithShards(opts.num_shards)
      .WithPartitioner(opts.partitioner)
      .WithShardCache(cache);
  if (!opts.trace_out.empty()) engine_builder.WithTrace(&trace);
  if (!opts.load_path.empty()) engine_builder.WithLoadPath(opts.load_path);
  auto built = engine_builder.Build();
  if (!built.ok()) {
    std::fprintf(stderr, "engine setup failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  const Graph& graph = *built->graph;
  if (!opts.save_path.empty()) {
    Status st = SaveGraphToFile(graph, opts.save_path);
    if (!st.ok()) {
      std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("saved %zu nodes / %zu edges to %s\n", graph.num_nodes(),
                graph.num_edges(), opts.save_path.c_str());
    return 0;
  }
  if (opts.use_index && built->star_index == nullptr) {
    std::fprintf(stderr, "star index unavailable (%s); continuing\n",
                 built->star_index_note.c_str());
  }

  std::printf("ready: %zu nodes, %zu edges, %s star index, %u shard%s "
              "[%s], %d thread%s, cache %zu (%.1f s setup)\n",
              graph.num_nodes(), graph.num_edges(),
              built->star_index != nullptr ? "with" : "without",
              opts.num_shards, opts.num_shards == 1 ? "" : "s",
              opts.partitioner.c_str(), opts.threads,
              opts.threads == 1 ? "" : "s", opts.cache_capacity,
              setup_timer.ElapsedSeconds());
  std::printf("type keywords (empty line quits):\n");

  std::string line;
  while (std::printf("> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (line.empty()) break;
    Result<Query> parsed = Query::Parse(line);
    if (!parsed.ok()) {
      std::printf("  error: %s\n", parsed.status().ToString().c_str());
      continue;
    }
    Query query = std::move(parsed).value();
    if (query.empty()) continue;

    SearchOverrides overrides;
    overrides.k = opts.k;
    overrides.max_diameter = opts.diameter;
    overrides.max_expansions = 500000;
    // The star index (when built) is already wired into the engine's
    // default bounds by the EngineBuilder; no per-query override needed.
    if (!opts.executor.empty()) {
      overrides.executor = opts.executor;
    } else if (opts.threads > 1) {
      overrides.executor = "parallel";
    }
    if (opts.threads > 1) overrides.num_threads = opts.threads;
    if (opts.deadline_ms > 0.0) overrides.deadline_ms = opts.deadline_ms;
    if (!opts.ranker.empty()) overrides.ranker = opts.ranker;
    if (!opts.order_by.empty()) overrides.order_by = opts.order_by;

    // With the cache on, requesting SearchStats would force a fresh search
    // (a memoized result has no stats to report), so repeated queries go
    // through the cacheable entry point and report cache counters instead.
    // Everything that changes what runs — threads, a deadline, an explicit
    // executor — reports fresh stage stats.
    const bool want_stats = opts.threads > 1 || opts.cache_capacity == 0 ||
                            opts.deadline_ms > 0.0 ||
                            !opts.executor.empty() || !opts.ranker.empty() ||
                            !opts.order_by.empty();
    Timer t;
    SearchStats stats;
    auto answers = built->sharded->Search(query, overrides,
                                          want_stats ? &stats : nullptr);
    if (!answers.ok()) {
      std::printf("  error: %s\n", answers.status().ToString().c_str());
      continue;
    }
    if (want_stats) {
      std::printf("  %zu answers in %.3f s via %s%s%s\n", answers->size(),
                  t.ElapsedSeconds(), stats.executor.c_str(),
                  stats.truncated ? "  [TRUNCATED: deadline/budget hit]" : "",
                  stats.budget_exhausted ? "  [expansion budget hit]" : "");
      std::printf("  stages: %lld generated, %lld pruned, %lld merged, "
                  "%lld bound calls, %.1f KiB arena; "
                  "prep %.1f ms / expand %.1f ms / emit %.1f ms\n",
                  static_cast<long long>(stats.stages.candidates_generated),
                  static_cast<long long>(stats.stages.candidates_pruned),
                  static_cast<long long>(stats.stages.candidates_merged),
                  static_cast<long long>(stats.stages.bound_calls),
                  static_cast<double>(stats.stages.arena_bytes) / 1024.0,
                  stats.stages.prepare_seconds * 1e3,
                  stats.stages.expand_seconds * 1e3,
                  stats.stages.emit_seconds * 1e3);
    } else {
      QueryCacheStats cs = built->sharded->cache_stats();
      std::printf("  %zu answers in %.3f s (cache: %llu hits / %llu misses)\n",
                  answers->size(), t.ElapsedSeconds(),
                  static_cast<unsigned long long>(cs.hits),
                  static_cast<unsigned long long>(cs.misses));
    }
    for (size_t i = 0; i < answers->size(); ++i) {
      std::printf("  #%zu score=%.5g %s\n", i + 1, (*answers)[i].score,
                  (*answers)[i].tree.ToString(graph).c_str());
    }
  }

  if (!opts.metrics_out.empty()) {
    const std::string rendered = EndsWith(opts.metrics_out, ".json")
                                     ? metrics.RenderJson()
                                     : metrics.RenderPrometheus();
    if (!WriteTextOutput(opts.metrics_out, rendered, "metrics")) return 1;
    if (opts.metrics_out != "-") {
      std::printf("metrics written to %s\n", opts.metrics_out.c_str());
    }
  }
  if (!opts.trace_out.empty()) {
    if (!WriteTextOutput(opts.trace_out, trace.RenderChromeJson(), "trace")) {
      return 1;
    }
    if (opts.trace_out != "-") {
      std::printf("%zu trace spans written to %s\n", trace.size(),
                  opts.trace_out.c_str());
    }
  }
  return 0;
}
